#include "serve/chaos.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"
#include "serve/load_driver.hpp"
#include "serve/replay.hpp"

namespace pushpull::serve {

using obs::render_number;

namespace {

/// Canonical byte rendering of per-class statistics — two stat vectors are
/// "bit-exact" equal iff their fingerprints match. Covers every counter
/// and the full wait distribution (mean and tail quantiles).
std::string stats_fingerprint(const std::vector<metrics::ClassStats>& stats) {
  std::ostringstream out;
  for (std::size_t cls = 0; cls < stats.size(); ++cls) {
    const metrics::ClassStats& s = stats[cls];
    out << cls << '|' << s.arrived << '|' << s.served << '|' << s.served_push
        << '|' << s.served_pull << '|' << s.blocked << '|' << s.abandoned
        << '|' << s.corrupted << '|' << s.retries << '|' << s.shed << '|'
        << s.lost << '|' << s.rejected << '|' << render_number(s.wait.mean())
        << '|' << render_number(s.wait_p50.count() ? s.wait_p50.value() : 0.0)
        << '|' << render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
        << '|' << render_number(s.wait_p99.count() ? s.wait_p99.value() : 0.0)
        << '\n';
  }
  return out.str();
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve chaos: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("serve chaos: cannot write " + path);
  }
}

const char* render_bool(bool b) noexcept { return b ? "true" : "false"; }

}  // namespace

ResumeResult resume_from_journal(const std::string& journal_path,
                                 const std::string& out_path) {
  ResumeResult result;
  result.recovered = recover_trace_file(journal_path);

  ServeConfig config = result.recovered.run.config;
  config.accelerated = true;
  const catalog::Catalog cat = config.build_catalog();
  const workload::ClientPopulation pop = config.build_population();
  LoadDriver driver(result.recovered.run.trace());
  LiveServer server(cat, pop, config);
  if (out_path.empty()) {
    result.report = server.run_accelerated(driver, nullptr);
  } else {
    JournalFile file(out_path);
    TraceRecorder recorder(file, config);
    result.report = server.run_accelerated(driver, &recorder);
  }
  return result;
}

ServeConfig chaos_profile(ServeConfig base) {
  if (base.mean_deadline <= 0.0) {
    base.mean_deadline = 8.0;
  }
  if (!base.deadline_spike_enabled()) {
    base.deadline_spike_factor = 0.35;
    base.deadline_spike_start = base.duration * 0.4;
    base.deadline_spike_duration = base.duration * 0.2;
  }
  if (!base.fault.enabled) {
    base.fault.enabled = true;
    base.fault.channel.p_good_to_bad = 0.05;
    base.fault.channel.p_bad_to_good = 0.25;
    base.fault.channel.corrupt_good = 0.01;
    base.fault.channel.corrupt_bad = 0.6;
  }
  if (base.fault.queue_capacity == 0) {
    base.fault.queue_capacity = 48;
    base.fault.shed_policy = fault::ShedPolicy::kDropLowestPriority;
  }
  base.overload.enabled = true;
  return base;
}

bool ChaosReport::all_exact() const noexcept {
  for (const ChaosRepOutcome& r : reps) {
    if (!r.replay_bit_exact) return false;
  }
  return true;
}

ChaosReport run_chaos(const ServeConfig& config, const ChaosOptions& options) {
  if (options.replications == 0) {
    throw std::invalid_argument("serve chaos: replications must be >= 1");
  }
  config.validate();

  // One stream drives every kill point, so the whole campaign replays from
  // the base seed.
  rng::Xoshiro256ss kill_eng =
      rng::StreamFactory(config.seed).stream("serve-chaos-kill");

  ChaosReport report;
  report.reps.reserve(options.replications);
  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    ServeConfig cfg = config;
    cfg.accelerated = true;
    if (rep > 0) {
      cfg.seed = rng::SplitMix64::mix(config.seed + rep);
    }
    const catalog::Catalog cat = cfg.build_catalog();
    const workload::ClientPopulation pop = cfg.build_population();

    const std::string stem =
        options.scratch_dir + "/serve_chaos_rep" + std::to_string(rep);
    const std::string full_path = stem + ".svj";
    const std::string killed_path = stem + "_killed.svj";
    const std::string resumed_path = stem + "_resumed.svj";

    {
      LoadDriver driver(cat, pop, cfg.target_qps, cfg.duration, cfg.seed);
      if (options.shape_plan) {
        // Plan-level shaping before anything is journaled: the journal
        // below records the shaped requests, so the kill/recover/resume/
        // replay chain needs no knowledge of the transformation.
        driver = LoadDriver(options.shape_plan(driver.plan(), cfg));
      }
      LiveServer server(cat, pop, cfg);
      JournalFile file(full_path);
      TraceRecorder recorder(file, cfg);
      (void)server.run_accelerated(driver, &recorder);
    }

    const std::string bytes = read_file_bytes(full_path);
    std::istringstream full_in(bytes);
    const JournalScan scan = scan_journal(full_in);
    if (scan.payloads.empty()) {
      throw std::runtime_error(
          "serve chaos: recorded journal has no complete records");
    }
    // The kill never lands inside the header record: a journal whose config
    // is gone is a total loss, not a recovery scenario.
    const std::uint64_t header_len =
        kFrameDigits + 1 + scan.payloads.front().size() + 1;
    const std::uint64_t span = bytes.size() - header_len;
    const std::uint64_t kill =
        header_len + rng::uniform_below(kill_eng, span + 1);
    write_file_bytes(killed_path, std::string_view(bytes).substr(0, kill));

    const ResumeResult resume = resume_from_journal(killed_path, resumed_path);

    const RecordedRun resumed = load_trace_file(resumed_path);
    ReplayOptions replay_options;
    replay_options.reps = 1;
    const std::vector<core::SimResult> replayed = replay(resumed,
                                                         replay_options);

    ChaosRepOutcome outcome;
    outcome.rep = rep;
    outcome.seed = cfg.seed;
    outcome.journal_bytes = bytes.size();
    outcome.kill_offset = kill;
    outcome.records_recovered = resume.recovered.records;
    outcome.requests_recovered = resume.recovered.run.requests.size();
    outcome.sealed = resume.recovered.sealed;
    outcome.replay_bit_exact =
        stats_fingerprint(resume.report.per_class) ==
        stats_fingerprint(replayed.front().per_class);
    outcome.ledger = resume.report.ledger;
    report.reps.push_back(outcome);
  }
  return report;
}

std::string render_chaos_report(const ChaosReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"chaos1\",\"replications\":" << report.reps.size()
      << ",\"all_exact\":" << render_bool(report.all_exact()) << "}\n";
  for (const ChaosRepOutcome& r : report.reps) {
    out << "{\"rep\":" << r.rep << ",\"seed\":" << r.seed
        << ",\"journal_bytes\":" << r.journal_bytes
        << ",\"kill_offset\":" << r.kill_offset
        << ",\"records_recovered\":" << r.records_recovered
        << ",\"requests_recovered\":" << r.requests_recovered
        << ",\"sealed\":" << render_bool(r.sealed)
        << ",\"replay_bit_exact\":" << render_bool(r.replay_bit_exact)
        << ",\"ledger\":" << r.ledger.render_json() << "}\n";
  }
  return out.str();
}

}  // namespace pushpull::serve
