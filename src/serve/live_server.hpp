#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/pull_queue.hpp"
#include "fault/channel.hpp"
#include "metrics/class_stats.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "resilience/overload.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "serve/clock.hpp"
#include "serve/completion_queue.hpp"
#include "serve/journal.hpp"
#include "serve/load_driver.hpp"
#include "serve/record.hpp"
#include "serve/serve_config.hpp"
#include "workload/population.hpp"

namespace pushpull::serve {

/// Bit marking a synthetic hedged duplicate's request id. Hedge duplicates
/// live only inside the pull queue: they boost their item entry's
/// aggregate importance, are absorbed silently at delivery, and never
/// appear in the journal or the conservation ledger.
inline constexpr workload::RequestId kHedgeIdBit = 1ull << 63;

/// What one live run produced. Every field is a pure function of the
/// processed event sequence, so an accelerated run's rendered report is
/// byte-stable across repeats of the same seed.
struct ServeReport {
  bool accelerated = false;
  double duration = 0.0;
  double target_qps = 0.0;
  /// Serve-time instant of the last settled request (broadcast units).
  double end_time = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  /// arrivals / end_time — the load actually absorbed, against target_qps.
  double achieved_qps = 0.0;
  /// Time-weighted mean pull-queue length (same integral as the DES).
  double mean_pull_queue_len = 0.0;
  std::size_t max_pull_queue_len = 0;
  /// Pull-queue depth distribution, sampled at every queue transition.
  obs::QuantileSummary queue_depth;
  /// Completion-queue telemetry: events accepted + deepest backlog.
  std::uint64_t cq_posted = 0;
  std::size_t cq_high_water = 0;
  std::vector<metrics::ClassStats> per_class;

  // --- robustness (populated/rendered only when config.robust()) ----------
  bool robust = false;
  std::uint64_t timed_out = 0;
  std::uint64_t retries = 0;
  std::uint64_t lost = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t corrupted_push_transmissions = 0;
  std::uint64_t corrupted_pull_transmissions = 0;
  std::uint64_t hedges_posted = 0;
  std::uint64_t hedges_absorbed = 0;
  std::uint64_t ladder_transitions = 0;
  resilience::OverloadLevel max_overload_level =
      resilience::OverloadLevel::kNormal;
  /// Every ladder move in event order (mirrors core::SimResult's log).
  std::vector<resilience::OverloadTransition> overload_transitions;
  bool drained = false;
  double drain_time = 0.0;
  /// Planned arrivals never injected because the drain stopped admission.
  std::uint64_t skipped_arrivals = 0;
  /// The machine-checked conservation identity (DESIGN §10), also sealed
  /// into the journal footer.
  ConservationLedger ledger;
};

/// Deterministic multi-line rendering (obs::render_number throughout): a
/// summary JSON line, then one line per class with mean/p50/p95/p99 wait.
/// Robustness fields are appended only for robust configs, so plain runs
/// render byte-identically to previous releases. Shared by the CLI,
/// bench/serve_qps, bench/serve_chaos and the reproducibility tests.
[[nodiscard]] std::string render_serve_report(const ServeReport& report);

/// core::HybridServer's scheduling rules, driven by a completion-queue
/// event loop instead of the DES kernel.
///
/// The scheduling mirror is exact for the deterministic subset ServeConfig
/// exposes: strict push/pull alternation (one pull opportunity after every
/// push), items [0, cutoff) broadcast cyclically with requests parked until
/// the item comes around, pull requests aggregated per item and extracted
/// by the configured policy, only requests present at transmission *start*
/// catching it, delivery at transmission *end*, a pure-pull server idling
/// on an empty queue until an arrival wakes it, and the same
/// time-weighted queue-length integral feeding the Eq. 6 policy's
/// E[L_pull]. Even the Poisson bandwidth-demand stream is consumed
/// identically, so an accelerated run and the DES replay of its own
/// recorded trace agree on every per-class statistic bit-for-bit.
///
/// The live failure model (DESIGN §10) extends the mirror with the DES
/// ordering discipline intact: every schedulable action — arrival,
/// transmission end, deadline expiry, retry requeue, ladder evaluation,
/// hedge — carries a (time, seq) pair assigned exactly where the DES
/// kernel would assign an event id, and the loop always dispatches the
/// minimum. Deadlines mirror the DES impatience model draw for draw (the
/// differential test in tests/test_serve_robustness.cpp), corruption and
/// retry mirror the fault layer, and the overload ladder mirrors
/// resilience::OverloadController wiring. Timer cancellation is lazy
/// (stale entries are skipped at the heap top), matching des::EventQueue.
///
/// Both run modes dispatch through the same CompletionQueue path; they
/// differ only in who produces events and how time advances:
///  * run_accelerated — single-threaded; the loop itself posts each planned
///    arrival / slot completion and advances a VirtualClock, so the run is
///    a pure function of the seed;
///  * run_realtime — pacer threads post wall-stamped arrivals; the loop
///    completes slots and fires timers as the wall clock passes their
///    logical times. Arrival stamps are observed (skew is real and
///    recorded); slot ends chain logically so airtime accounting stays
///    exact. SIGTERM (via set_drain_flag) or drain_after triggers the
///    graceful drain: admission stops, the pull side flushes, the journal
///    seals with the conservation ledger.
class LiveServer {
 public:
  LiveServer(const catalog::Catalog& cat,
             const workload::ClientPopulation& pop, ServeConfig config);

  /// Drains the driver's whole plan on a virtual clock. `recorder` (may be
  /// null) receives every dispatched arrival and scheduling decision.
  [[nodiscard]] ServeReport run_accelerated(LoadDriver& driver,
                                            TraceRecorder* recorder);

  /// Consumes `planned` arrivals from `queue` (fed by LoadDriver pacers on
  /// `clock`), runs until all are settled (or the drain flushes), then
  /// reports. The queue must be closed by the producer side when the load
  /// ends.
  [[nodiscard]] ServeReport run_realtime(CompletionQueue& queue, Clock& clock,
                                         std::uint64_t planned,
                                         TraceRecorder* recorder);

  /// Optional trace hook for the live-only categories (timeout / retry /
  /// drain). A default-constructed tracer is inert.
  void set_tracer(const obs::Tracer& tracer) { tracer_ = tracer; }

  /// Installs the external drain request flag (SIGTERM handler target).
  /// Polled by run_realtime; null disables.
  void set_drain_flag(const std::atomic<bool>* flag) noexcept {
    drain_flag_ = flag;
  }

 private:
  /// One transmission on air. `pending` is the committed audience (push:
  /// the waiters caught at start; pull: the extracted entry's requests).
  struct InFlight {
    bool push = true;
    catalog::ItemId item = 0;
    double end = 0.0;
    std::uint64_t end_seq = 0;  // the DES id of the transmission-end event
    std::vector<workload::Request> pending;
  };

  enum class TimerKind : std::uint8_t {
    kDeadline,    ///< per-request deadline expiry (DES impatience mirror)
    kRetry,       ///< backed-off re-request after a corrupted pull
    kLadderEval,  ///< periodic overload-controller evaluation
    kHedge,       ///< hedged re-request check for a still-queued request
  };

  struct Timer {
    double time = 0.0;
    std::uint64_t seq = 0;
    TimerKind kind = TimerKind::kDeadline;
    workload::Request request{};
  };

  struct TimerAfter {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void reset_run();
  void dispatch(const Completion& c);
  void handle_arrival(workload::Request request, double observed);
  void start_next(bool just_did_push, double now);
  void start_push(double now);
  void start_pull(double now);
  void complete_slot();
  void deliver(const workload::Request& r, bool via_push, double now);
  void note_queue_len(double now);
  void settle(double now);

  // --- failure-model mirrors ----------------------------------------------
  void arm_deadline(const workload::Request& request, double now);
  void disarm_deadline(workload::RequestId id);
  void on_deadline_expired(const workload::Request& request, double now);
  void arm_hedge(const workload::Request& request, double now);
  void on_hedge_fire(const workload::Request& request, double now);
  void on_ladder_eval(double now);
  void apply_overload_level(resilience::OverloadLevel level, double now);
  void apply_cutoff_boost(std::size_t boost, double now);
  [[nodiscard]] bool admit_pull(const workload::Request& request, double now);
  void shed_one(const workload::Request& request, double now);
  void requeue_pull(const workload::Request& request, double now);
  void remove_hedge_dup(const workload::Request& primary);
  [[nodiscard]] std::size_t effective_cutoff() const noexcept;
  [[nodiscard]] std::size_t effective_queue_capacity() const noexcept;
  [[nodiscard]] fault::ShedPolicy effective_shed_policy() const noexcept;
  [[nodiscard]] bool uplink_rejected(workload::ClassId cls) const noexcept;
  /// The ladder's configuration block (the DES engine keeps it at a
  /// different config path; this accessor is what lets the parity regions
  /// stay token-identical).
  [[nodiscard]] const resilience::OverloadConfig& overload_config()
      const noexcept {
    return config_.overload;
  }

  // --- event plumbing -----------------------------------------------------
  /// Top of the timer heap with stale (lazily cancelled) entries skipped;
  /// nullptr when no live timer is pending.
  [[nodiscard]] const Timer* peek_timer();
  void fire_timer(const Timer& timer);
  /// Fires, in (time, seq) order, every due timer and slot completion up to
  /// `now` (the realtime advance path).
  void advance_to(double now);
  void engage_drain(double now, std::uint64_t skipped);
  [[nodiscard]] bool pull_side_drained() const noexcept;
  /// Requests injected but not yet settled, counted structurally (push
  /// park + real queued requests + committed in-flight + retry backoffs).
  [[nodiscard]] std::uint64_t structural_in_flight() const noexcept;
  /// Builds the ledger and machine-checks the conservation identity
  /// (throws std::logic_error on any imbalance).
  void finalize_ledger();
  [[nodiscard]] ServeReport make_report(const CompletionQueue& queue) const;

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  ServeConfig config_;

  core::PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  rng::Xoshiro256ss demand_eng_;
  rng::Xoshiro256ss patience_eng_;
  std::optional<fault::GilbertElliottChannel> channel_;
  std::vector<std::vector<workload::Request>> push_waiters_;
  std::unique_ptr<metrics::ClassCollector> collector_;
  std::optional<InFlight> inflight_;
  TraceRecorder* recorder_ = nullptr;
  obs::Tracer tracer_;
  const std::atomic<bool>* drain_flag_ = nullptr;

  // Event-ordering mirror of the DES id counter.
  std::uint64_t seq_ = 0;
  std::uint64_t next_arrival_seq_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, TimerAfter> timers_;
  std::unordered_map<workload::RequestId, std::uint64_t> deadline_seq_;
  std::unordered_map<workload::RequestId, std::uint64_t> hedge_seq_;
  std::unordered_set<workload::RequestId> hedged_;  // primaries with live dup
  std::unordered_set<workload::RequestId> queued_;  // real ids in pull queue
  std::unordered_map<workload::RequestId, std::uint32_t> retry_count_;
  std::uint64_t retry_pending_ = 0;  // kRetry timers not yet fired

  resilience::OverloadController overload_;
  std::vector<double> blocking_ewma_;
  std::size_t cutoff_boost_ = 0;

  bool draining_ = false;
  double drain_time_ = 0.0;
  std::uint64_t skipped_arrivals_ = 0;
  std::uint64_t hedges_posted_ = 0;
  std::uint64_t hedges_absorbed_ = 0;
  ConservationLedger ledger_;

  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  std::uint64_t corrupted_push_transmissions_ = 0;
  std::uint64_t corrupted_pull_transmissions_ = 0;
  double queue_len_area_ = 0.0;
  double queue_len_last_t_ = 0.0;
  std::size_t max_queue_len_ = 0;
  double end_time_ = 0.0;
  obs::QuantileTrack queue_depth_;
};

}  // namespace pushpull::serve
