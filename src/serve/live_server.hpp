#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/pull_queue.hpp"
#include "metrics/class_stats.hpp"
#include "obs/observer.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "serve/clock.hpp"
#include "serve/completion_queue.hpp"
#include "serve/load_driver.hpp"
#include "serve/record.hpp"
#include "serve/serve_config.hpp"
#include "workload/population.hpp"

namespace pushpull::serve {

/// What one live run produced. Every field is a pure function of the
/// processed event sequence, so an accelerated run's rendered report is
/// byte-stable across repeats of the same seed.
struct ServeReport {
  bool accelerated = false;
  double duration = 0.0;
  double target_qps = 0.0;
  /// Serve-time instant of the last delivery (broadcast units).
  double end_time = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  /// arrivals / end_time — the load actually absorbed, against target_qps.
  double achieved_qps = 0.0;
  /// Time-weighted mean pull-queue length (same integral as the DES).
  double mean_pull_queue_len = 0.0;
  std::size_t max_pull_queue_len = 0;
  /// Pull-queue depth distribution, sampled at every queue transition.
  obs::QuantileSummary queue_depth;
  /// Completion-queue telemetry: events accepted + deepest backlog.
  std::uint64_t cq_posted = 0;
  std::size_t cq_high_water = 0;
  std::vector<metrics::ClassStats> per_class;
};

/// Deterministic multi-line rendering (obs::render_number throughout): a
/// summary JSON line, then one line per class with mean/p50/p95/p99 wait.
/// Shared by the CLI, bench/serve_qps and the reproducibility tests.
[[nodiscard]] std::string render_serve_report(const ServeReport& report);

/// core::HybridServer's scheduling rules, driven by a completion-queue
/// event loop instead of the DES kernel.
///
/// The scheduling mirror is exact for the deterministic subset ServeConfig
/// exposes: strict push/pull alternation (one pull opportunity after every
/// push), items [0, cutoff) broadcast cyclically with requests parked until
/// the item comes around, pull requests aggregated per item and extracted
/// by the configured policy, only requests present at transmission *start*
/// catching it, delivery at transmission *end*, a pure-pull server idling
/// on an empty queue until an arrival wakes it, and the same
/// time-weighted queue-length integral feeding the Eq. 6 policy's
/// E[L_pull]. Even the Poisson bandwidth-demand stream is consumed
/// identically, so an accelerated run and the DES replay of its own
/// recorded trace agree on every per-class statistic bit-for-bit.
///
/// Both run modes dispatch through the same CompletionQueue path; they
/// differ only in who produces events and how time advances:
///  * run_accelerated — single-threaded; the loop itself posts each planned
///    arrival / slot completion and advances a VirtualClock, so the run is
///    a pure function of the seed;
///  * run_realtime — pacer threads post wall-stamped arrivals; the loop
///    completes slots as the wall clock passes their logical end. Arrival
///    stamps are observed (skew is real and recorded); slot ends chain
///    logically so airtime accounting stays exact.
class LiveServer {
 public:
  LiveServer(const catalog::Catalog& cat,
             const workload::ClientPopulation& pop, ServeConfig config);

  /// Drains the driver's whole plan on a virtual clock. `recorder` (may be
  /// null) receives every dispatched arrival and scheduling decision.
  [[nodiscard]] ServeReport run_accelerated(LoadDriver& driver,
                                            TraceRecorder* recorder);

  /// Consumes `planned` arrivals from `queue` (fed by LoadDriver pacers on
  /// `clock`), runs until all are delivered, then reports. The queue must
  /// be closed by the producer side when the load ends.
  [[nodiscard]] ServeReport run_realtime(CompletionQueue& queue, Clock& clock,
                                         std::uint64_t planned,
                                         TraceRecorder* recorder);

 private:
  /// One transmission on air. `pending` is the committed audience (push:
  /// the waiters caught at start; pull: the extracted entry's requests).
  struct InFlight {
    bool push = true;
    catalog::ItemId item = 0;
    double end = 0.0;
    std::vector<workload::Request> pending;
  };

  void reset_run();
  void dispatch(const Completion& c);
  void handle_arrival(workload::Request request, double observed);
  void start_next(bool just_did_push, double now);
  void start_push(double now);
  void start_pull(double now);
  void complete_slot();
  void note_queue_len(double now);
  [[nodiscard]] ServeReport make_report(const CompletionQueue& queue) const;

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  ServeConfig config_;

  core::PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  rng::Xoshiro256ss demand_eng_;
  std::vector<std::vector<workload::Request>> push_waiters_;
  std::unique_ptr<metrics::ClassCollector> collector_;
  std::optional<InFlight> inflight_;
  TraceRecorder* recorder_ = nullptr;

  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  double queue_len_area_ = 0.0;
  double queue_len_last_t_ = 0.0;
  std::size_t max_queue_len_ = 0;
  double end_time_ = 0.0;
  obs::QuantileTrack queue_depth_;
};

}  // namespace pushpull::serve
