#pragma once

#include <memory>

namespace pushpull::serve {

/// The serving layer's only source of time.
///
/// Everything in `src/serve/` — slot completions, arrival stamps, latency
/// measurements — reads time exclusively through this interface, in
/// *broadcast units* (the same unit the DES core uses: transmitting an item
/// of length L occupies L units of airtime). That is the subsystem's
/// determinism fence (DESIGN §9):
///
///  * the **virtual** backend never consults the machine — the event loop
///    advances it explicitly, so an accelerated run is a pure function of
///    its seed and is bit-reproducible;
///  * the **wall** backend is the one place in the tree where real time is
///    a feature. Its implementation lives in `src/serve/clock.cpp`, the
///    single file detlint's D1 (no-wall-clock) rule exempts; a
///    `std::chrono::steady_clock` read anywhere else — including elsewhere
///    in `src/serve/` — is still a lint error.
///
/// Blocking primitives elsewhere in the layer (completion-queue waits, load
/// pacing sleeps) may time out, but a timeout is never used as a timestamp:
/// every recorded time is a `now()` read.
class Clock {
 public:
  virtual ~Clock() = default;

  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  /// Current serve-time in broadcast units since the clock started.
  [[nodiscard]] virtual double now() = 0;

  /// True when time advances with the wall (waiting is real waiting).
  [[nodiscard]] virtual bool realtime() const noexcept = 0;

  /// Wall seconds remaining until serve-time `t` — the budget a caller may
  /// block for before `t` arrives. Always 0 on a virtual clock (nothing is
  /// worth waiting for; the loop advances time itself) and 0 once `t` has
  /// passed. Used to bound waits, never to produce timestamps.
  [[nodiscard]] virtual double seconds_until(double t) = 0;
};

/// Deterministic accelerated backend: serve-time is whatever the event loop
/// last advanced it to. `now()` never consults the machine, so two runs
/// that process the same completions in the same order read identical
/// timestamps — the property the record/replay bridge and the seed-
/// reproducibility tests stand on.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] double now() override { return now_; }
  [[nodiscard]] bool realtime() const noexcept override { return false; }
  [[nodiscard]] double seconds_until(double) override { return 0.0; }

  /// Advances to `t`; moving backwards is ignored (the clock is monotone,
  /// like the DES kernel's).
  void advance_to(double t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0.0;
};

/// Wall-clock backend anchored at construction: serve-time is
/// `elapsed wall seconds × time_scale` broadcast units, so `time_scale` is
/// the pacing knob (1.0 = one broadcast unit per second; 10.0 = ten times
/// faster than real time). Throws std::invalid_argument on a non-positive
/// or non-finite scale. Implementation in clock.cpp — the D1 fence.
[[nodiscard]] std::unique_ptr<Clock> make_wall_clock(double time_scale);

}  // namespace pushpull::serve
