// The D1 fence. This translation unit is the only place in the repository
// where simulation-adjacent code may read the machine's clock; detlint
// exempts exactly this path (src/serve/clock.cpp) from rule D1, and every
// other file — including the rest of src/serve/ — still trips the lint on a
// direct std::chrono::steady_clock read. Keep all wall-time access behind
// make_wall_clock(); see serve::Clock in clock.hpp.

#include "serve/clock.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

namespace pushpull::serve {

namespace {

class WallClock final : public Clock {
 public:
  explicit WallClock(double time_scale)
      : scale_(time_scale), start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now() override {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    return elapsed.count() * scale_;
  }

  [[nodiscard]] bool realtime() const noexcept override { return true; }

  [[nodiscard]] double seconds_until(double t) override {
    const double gap = t - now();
    return gap > 0.0 ? gap / scale_ : 0.0;
  }

 private:
  double scale_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::unique_ptr<Clock> make_wall_clock(double time_scale) {
  if (!(time_scale > 0.0) || !(time_scale < 1e18)) {
    throw std::invalid_argument("serve::make_wall_clock: time_scale must be "
                                "positive and finite, got " +
                                std::to_string(time_scale));
  }
  return std::make_unique<WallClock>(time_scale);
}

}  // namespace pushpull::serve
