#include "serve/serve_config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "catalog/length_model.hpp"

namespace pushpull::serve {

void ServeConfig::validate() const {
  if (num_items == 0) {
    throw std::invalid_argument("ServeConfig: num_items must be >= 1");
  }
  if (num_classes == 0) {
    throw std::invalid_argument("ServeConfig: num_classes must be >= 1");
  }
  if (min_length == 0) {
    throw std::invalid_argument(
        "ServeConfig: min_length must be >= 1 (zero-length items never "
        "finish transmitting)");
  }
  if (max_length < min_length) {
    throw std::invalid_argument(
        "ServeConfig: max_length (" + std::to_string(max_length) +
        ") must be >= min_length (" + std::to_string(min_length) + ")");
  }
  if (!(theta >= 0.0) || !std::isfinite(theta)) {
    throw std::invalid_argument(
        "ServeConfig: theta must be a non-negative finite number");
  }
  if (cutoff > num_items) {
    throw std::invalid_argument(
        "ServeConfig: cutoff (" + std::to_string(cutoff) +
        ") beyond catalog size (" + std::to_string(num_items) + ")");
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    throw std::invalid_argument(
        "ServeConfig: duration must be a positive finite number, got " +
        std::to_string(duration));
  }
  if (!(target_qps > 0.0) || !std::isfinite(target_qps)) {
    throw std::invalid_argument(
        "ServeConfig: target_qps must be a positive finite number, got " +
        std::to_string(target_qps));
  }
  if (!(time_scale > 0.0) || !std::isfinite(time_scale)) {
    throw std::invalid_argument(
        "ServeConfig: time_scale must be a positive finite number, got " +
        std::to_string(time_scale));
  }
  if (pacers == 0) {
    throw std::invalid_argument("ServeConfig: pacers must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServeConfig: queue_capacity must be >= 1");
  }
}

core::HybridConfig ServeConfig::hybrid() const {
  core::HybridConfig config;
  config.cutoff = cutoff;
  config.alpha = alpha;
  config.pull_policy = pull_policy;
  config.push_policy = push_policy;
  config.mean_bandwidth_demand = mean_bandwidth_demand;
  config.seed = seed;
  return config;
}

catalog::Catalog ServeConfig::build_catalog() const {
  const catalog::LengthModel lengths(min_length, max_length, mean_length);
  return catalog::Catalog(num_items, theta, lengths, seed);
}

workload::ClientPopulation ServeConfig::build_population() const {
  return workload::ClientPopulation::zipf_classes(num_classes,
                                                  class_zipf_theta);
}

}  // namespace pushpull::serve
