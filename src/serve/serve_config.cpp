#include "serve/serve_config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "catalog/length_model.hpp"
#include "metrics/float_compare.hpp"

namespace pushpull::serve {

void ServeConfig::validate() const {
  if (num_items == 0) {
    throw std::invalid_argument("ServeConfig: num_items must be >= 1");
  }
  if (num_classes == 0) {
    throw std::invalid_argument("ServeConfig: num_classes must be >= 1");
  }
  if (min_length == 0) {
    throw std::invalid_argument(
        "ServeConfig: min_length must be >= 1 (zero-length items never "
        "finish transmitting)");
  }
  if (max_length < min_length) {
    throw std::invalid_argument(
        "ServeConfig: max_length (" + std::to_string(max_length) +
        ") must be >= min_length (" + std::to_string(min_length) + ")");
  }
  if (!(theta >= 0.0) || !std::isfinite(theta)) {
    throw std::invalid_argument(
        "ServeConfig: theta must be a non-negative finite number");
  }
  if (cutoff > num_items) {
    throw std::invalid_argument(
        "ServeConfig: cutoff (" + std::to_string(cutoff) +
        ") beyond catalog size (" + std::to_string(num_items) + ")");
  }
  if (!(duration > 0.0) || !std::isfinite(duration)) {
    throw std::invalid_argument(
        "ServeConfig: duration must be a positive finite number, got " +
        std::to_string(duration));
  }
  if (!(target_qps > 0.0) || !std::isfinite(target_qps)) {
    throw std::invalid_argument(
        "ServeConfig: target_qps must be a positive finite number, got " +
        std::to_string(target_qps));
  }
  if (!(time_scale > 0.0) || !std::isfinite(time_scale)) {
    throw std::invalid_argument(
        "ServeConfig: time_scale must be a positive finite number, got " +
        std::to_string(time_scale));
  }
  if (pacers == 0) {
    throw std::invalid_argument("ServeConfig: pacers must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServeConfig: queue_capacity must be >= 1");
  }
  if (!std::isfinite(mean_deadline)) {
    throw std::invalid_argument("ServeConfig: mean_deadline must be finite");
  }
  if (!deadline_scale.empty() && deadline_scale.size() != num_classes) {
    throw std::invalid_argument(
        "ServeConfig: deadline_scale must be empty or carry one factor per "
        "class (" + std::to_string(deadline_scale.size()) + " given, " +
        std::to_string(num_classes) + " classes)");
  }
  for (const double s : deadline_scale) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument(
          "ServeConfig: deadline_scale factors must be positive finite "
          "numbers, got " + std::to_string(s));
    }
  }
  if (!(deadline_spike_factor > 0.0) || !std::isfinite(deadline_spike_factor)) {
    throw std::invalid_argument(
        "ServeConfig: deadline_spike_factor must be a positive finite "
        "number");
  }
  if (deadline_spike_start < 0.0 || !std::isfinite(deadline_spike_start) ||
      deadline_spike_duration < 0.0 ||
      !std::isfinite(deadline_spike_duration)) {
    throw std::invalid_argument(
        "ServeConfig: deadline spike start/duration must be non-negative "
        "finite numbers");
  }
  fault.validate();
  overload.validate();
  if (hedge_after < 0.0 || !std::isfinite(hedge_after)) {
    throw std::invalid_argument(
        "ServeConfig: hedge_after must be a non-negative finite number");
  }
  if (drain_after < 0.0 || !std::isfinite(drain_after)) {
    throw std::invalid_argument(
        "ServeConfig: drain_after must be a non-negative finite number");
  }
}

bool ServeConfig::robust() const noexcept {
  return mean_deadline > 0.0 || !deadline_scale.empty() ||
         deadline_spike_enabled() || fault.active() || overload.enabled ||
         hedge_after > 0.0 || drain_after > 0.0;
}

bool ServeConfig::des_mappable() const noexcept {
  if (fault.active() || overload.enabled) return false;
  if (hedge_after > 0.0 || drain_after > 0.0) return false;
  if (deadline_spike_enabled()) return false;
  for (const double s : deadline_scale) {
    if (!metrics::exactly_equal(s, 1.0)) return false;
  }
  return true;
}

core::HybridConfig ServeConfig::hybrid() const {
  core::HybridConfig config;
  config.cutoff = cutoff;
  config.alpha = alpha;
  config.pull_policy = pull_policy;
  config.push_policy = push_policy;
  config.mean_bandwidth_demand = mean_bandwidth_demand;
  config.mean_patience = mean_deadline > 0.0 ? mean_deadline : 0.0;
  config.fault = fault;
  config.resilience.overload = overload;
  config.seed = seed;
  return config;
}

catalog::Catalog ServeConfig::build_catalog() const {
  const catalog::LengthModel lengths(min_length, max_length, mean_length);
  return catalog::Catalog(num_items, theta, lengths, seed);
}

workload::ClientPopulation ServeConfig::build_population() const {
  return workload::ClientPopulation::zipf_classes(num_classes,
                                                  class_zipf_theta);
}

}  // namespace pushpull::serve
