#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <functional>

#include "workload/trace.hpp"

#include "serve/journal.hpp"
#include "serve/live_server.hpp"
#include "serve/record.hpp"
#include "serve/serve_config.hpp"

namespace pushpull::serve {

/// What `pushpull serve --resume` produces: the salvaged journal prefix and
/// the report of deterministically re-running it.
struct ResumeResult {
  /// The longest valid prefix of the crashed journal (header + salvaged
  /// requests/decisions; `sealed` when the file was actually complete).
  RecoveredRun recovered;
  /// Report of re-running the recovered prefix through the accelerated
  /// live engine with the recorded config and seed. A pure function of the
  /// recovered bytes, so `pushpull replay` of the resumed journal
  /// reproduces these per-class statistics bit-for-bit.
  ServeReport report;
};

/// Crash recovery: salvages the longest valid prefix of the sv2 journal at
/// `journal_path` (std::runtime_error when even the header is gone),
/// re-runs it through the accelerated live engine, and — when `out_path`
/// is non-empty — records the re-run into a fresh *sealed* journal there,
/// conservation ledger and all.
[[nodiscard]] ResumeResult resume_from_journal(const std::string& journal_path,
                                               const std::string& out_path);

/// The `serve --chaos` failure cocktail: takes a base config and switches
/// on every robustness mechanism that is still at its inert default —
/// per-request deadlines, a mid-run deadline-tightening spike, the
/// Gilbert–Elliott burst-error channel with bounded-backoff retries, a
/// bounded pull queue with priority shedding, and the overload ladder.
/// Everything derives from the one base seed; knobs the caller already set
/// are left untouched.
[[nodiscard]] ServeConfig chaos_profile(ServeConfig base);

/// Chaos-harness execution knobs.
struct ChaosOptions {
  /// Independent kill/recover/resume/replay cycles (seed-decorrelated like
  /// replay reps).
  std::size_t replications = 5;
  /// Where the per-rep journal artifacts land (`serve_chaos_rep<k>.svj`,
  /// `..._killed.svj`, `..._resumed.svj`). Left on disk for audit/CI
  /// upload.
  std::string scratch_dir = ".";
  /// Optional plan transformer applied to each replication's synthesized
  /// trace before it is journaled. The CLI wires `--scenario` through this
  /// hook (the same plan-level shaping as plain `serve --scenario`); the
  /// journal then records the *shaped* requests, so the serve layer — and
  /// the whole recover/resume/replay chain — stays scenario-oblivious.
  /// Called with the rep's plan and that rep's (seed-decorrelated) config.
  std::function<workload::Trace(workload::Trace, const ServeConfig&)>
      shape_plan;
};

/// One kill/recover/resume/replay cycle's outcome.
struct ChaosRepOutcome {
  std::uint64_t rep = 0;
  std::uint64_t seed = 0;
  /// Size of the complete (pre-kill) journal.
  std::uint64_t journal_bytes = 0;
  /// Byte offset the crash-kill truncated the journal at (drawn from the
  /// "serve-chaos-kill" stream; always past the header record).
  std::uint64_t kill_offset = 0;
  /// Complete records salvaged from the truncated file (header included).
  std::uint64_t records_recovered = 0;
  std::uint64_t requests_recovered = 0;
  /// True when the kill offset happened to preserve the whole journal.
  bool sealed = false;
  /// True when `pushpull replay` of the resumed journal reproduced the
  /// resume run's per-class statistics bit-for-bit.
  bool replay_bit_exact = false;
  /// The resumed run's machine-checked conservation ledger.
  ConservationLedger ledger;
};

struct ChaosReport {
  std::vector<ChaosRepOutcome> reps;

  /// Every replication replayed bit-exactly.
  [[nodiscard]] bool all_exact() const noexcept;
};

/// The seeded chaos harness behind `pushpull serve --chaos`. Per
/// replication: run the config accelerated while journaling; crash-kill
/// the journal by truncating it at a random byte offset; recover the
/// longest valid prefix; resume (re-run + re-seal); replay the resumed
/// journal and compare per-class statistics bit-for-bit. Conservation is
/// machine-checked by every live run on the way (LiveServer throws on
/// imbalance). Deterministic: the whole report is a pure function of
/// (config, options).
[[nodiscard]] ChaosReport run_chaos(const ServeConfig& config,
                                    const ChaosOptions& options);

/// Deterministic rendering: a summary line, then one JSON line per
/// replication with the kill point, recovery extent, bit-exactness verdict
/// and conservation ledger.
[[nodiscard]] std::string render_chaos_report(const ChaosReport& report);

}  // namespace pushpull::serve
