#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "workload/request.hpp"

namespace pushpull::serve {

/// What happened, as seen by the server's event loop.
enum class CompletionKind : std::uint8_t {
  kArrival,   ///< a client pull request reached the server
  kSlotEnd,   ///< the in-flight broadcast/unicast transmission finished
  kTimer,     ///< a scheduled timer expired (duration horizon, wake-ups)
  kShutdown,  ///< producers are done; drain and stop
};

/// One event. `time` is serve-time in broadcast units as read from the
/// posting side's serve::Clock; `request` is meaningful for kArrival only.
struct Completion {
  CompletionKind kind = CompletionKind::kTimer;
  double time = 0.0;
  workload::Request request{};
};

/// Bounded multi-producer/single-consumer queue feeding the serve loop.
///
/// Producers (load-driver pacer threads, the timer) `post()`; the single
/// server thread `pop()`s. The bound applies backpressure: `post` blocks
/// while the queue is full, which in an open-loop load test shows up as
/// arrival-stamp skew rather than unbounded memory. `close()` releases
/// everyone; posts after close are dropped (the race between a pacer's last
/// send and shutdown is benign), pops drain what remains and then return
/// nullopt.
///
/// Ordering is strict FIFO by post order — the consumer, not the queue,
/// applies the DES tie rule (arrival-before-slot-end at equal times),
/// because only the consumer sees both streams.
class CompletionQueue {
 public:
  /// Throws std::invalid_argument on a zero capacity.
  explicit CompletionQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "serve::CompletionQueue: capacity must be positive");
    }
  }

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the event was dropped because the queue is closed.
  bool post(const Completion& c) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(c);
    ++posted_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking post. Returns false when full or closed.
  bool try_post(const Completion& c) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(c);
      ++posted_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Waits up to `timeout_seconds` (wall seconds — a wait budget, never a
  /// timestamp) for an event. Returns nullopt on timeout, or when the
  /// queue is closed and drained. A negative/zero timeout polls.
  std::optional<Completion> pop(double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return closed_ || !items_.empty(); };
    if (!ready()) {
      if (timeout_seconds > 0.0) {
        not_empty_.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds), ready);
      }
    }
    if (items_.empty()) return std::nullopt;
    Completion c = items_.front();
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return c;
  }

  /// Blocks indefinitely until an event arrives or the queue is closed and
  /// drained.
  std::optional<Completion> pop_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    Completion c = items_.front();
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return c;
  }

  /// Releases all waiters; subsequent posts are dropped, pops drain.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  /// Deepest the queue ever got — a backpressure telemetry point.
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  /// Total events accepted over the queue's lifetime.
  [[nodiscard]] std::uint64_t posted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return posted_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Completion> items_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::uint64_t posted_ = 0;
};

}  // namespace pushpull::serve
