#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/config.hpp"
#include "fault/fault_config.hpp"
#include "metrics/float_compare.hpp"
#include "resilience/overload.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"

namespace pushpull::serve {

/// Everything one live serving run needs: the workload universe (the §5.1
/// scenario parameters, so the live server and the DES speak the same
/// catalog), the scheduler knobs, the serving-specific execution knobs,
/// and the live failure model (DESIGN §10).
///
/// Robustness defaults are inert: with deadlines, faults, the ladder,
/// hedging and drain all off, the live loop derives no extra streams and
/// schedules no timers, so an accelerated run's per-class statistics match
/// its own DES replay bit-for-bit (the differential test in
/// tests/test_serve.cpp). With only `mean_deadline` enabled the run is
/// still DES-mappable — deadlines mirror the DES impatience model draw
/// for draw. Per-class deadline scales, the deadline spike, faults, the
/// ladder and hedging are live-engine territory: `pushpull replay` then
/// re-runs the trace through the deterministic accelerated LiveServer
/// instead of the DES (see des_mappable()).
struct ServeConfig {
  // --- workload universe (mirrors exp::Scenario) --------------------------
  std::size_t num_items = 100;
  double theta = 0.60;
  std::size_t num_classes = 3;
  double class_zipf_theta = 1.0;
  std::uint32_t min_length = 1;
  std::uint32_t max_length = 5;
  double mean_length = 2.0;

  // --- scheduler ----------------------------------------------------------
  std::size_t cutoff = 40;
  double alpha = 0.5;
  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;
  sched::PushPolicyKind push_policy = sched::PushPolicyKind::kFlat;
  /// Mirrored from HybridConfig so replay consumes the identical
  /// bandwidth-demand stream (the live path never blocks — the channel is
  /// unconstrained — but the draw itself must happen to keep RNG parity).
  double mean_bandwidth_demand = 1.0;

  // --- serving ------------------------------------------------------------
  /// Load-generation horizon in broadcast units (at time_scale 1 a
  /// broadcast unit is one wall second, so this reads as seconds).
  double duration = 50.0;
  /// Open-loop offered load: mean request arrivals per broadcast unit.
  double target_qps = 5.0;
  std::uint64_t seed = 20050614;
  /// true = virtual clock, the event loop advances time itself (fast and
  /// bit-reproducible); false = wall clock, the load driver paces arrivals
  /// in real time.
  bool accelerated = false;
  /// Broadcast units per wall second on the wall clock (ignored when
  /// accelerated). 1.0 = real time; 10.0 = 10x fast-forward.
  double time_scale = 1.0;
  /// Producer threads pacing arrivals in wall-clock mode. The *plan* is
  /// pacer-count-invariant (synthesized upfront from one generator); pacers
  /// only affect how faithfully it is paced. Ignored when accelerated.
  std::size_t pacers = 1;
  /// Completion-queue bound; a full queue backpressures the pacers.
  std::size_t queue_capacity = 1024;

  // --- robustness (live failure model, DESIGN §10) ------------------------
  /// Mean of the exponential per-request deadline in broadcast units (the
  /// client's patience, drawn from the seeded "patience" stream at arm
  /// time exactly as the DES impatience model does). <= 0 disables
  /// deadlines: no stream is derived and no timer is armed.
  double mean_deadline = 0.0;
  /// Per-class multipliers on each deadline draw; empty = all 1.0. Any
  /// factor != 1 breaks the DES impatience mapping (live-engine replay).
  std::vector<double> deadline_scale;
  /// Deadline-tightening spike (chaos): draws armed inside
  /// [spike_start, spike_start + spike_duration) are multiplied by
  /// `deadline_spike_factor`. factor == 1 or duration <= 0 disables.
  double deadline_spike_factor = 1.0;
  double deadline_spike_start = 0.0;
  double deadline_spike_duration = 0.0;
  /// Burst-error downlink, bounded pull queue with shedding, and the
  /// bounded-exponential-backoff retry policy — the same fault::FaultConfig
  /// the DES consumes, applied to the live loop. Defaults are inert.
  fault::FaultConfig fault;
  /// Overload degradation ladder (shed-low → widen-push →
  /// admission-control → brownout); transitions are stamped into the sv2
  /// decision log. Defaults off.
  resilience::OverloadConfig overload;
  /// Hedged re-request: a pull request still queued this many broadcast
  /// units after admission posts a duplicate (synthetic id) into its
  /// item's queue entry, boosting the entry's aggregate importance so the
  /// scheduler reaches it sooner. <= 0 disables.
  double hedge_after = 0.0;
  /// Test hook: stop admission at this serve-time instant and drain
  /// (flush the pull queue, seal the journal, report the conservation
  /// ledger). SIGTERM triggers the same path in realtime mode. <= 0
  /// disables.
  double drain_after = 0.0;
  /// v2 journal: fsync after this many appended records when recording to
  /// a file-backed JournalFile (0 = sync only at seal).
  std::size_t journal_sync_every = 64;

  /// Rejects unusable values (zero counts/capacity, non-positive duration,
  /// target_qps, time_scale or lengths, cutoff beyond the catalog, bad
  /// deadline/fault/ladder/hedge parameters) with a std::invalid_argument
  /// naming the offending field.
  void validate() const;

  /// Deadline multiplier for a class (1.0 when deadline_scale is empty).
  [[nodiscard]] double deadline_scale_for(std::size_t cls) const noexcept {
    return cls < deadline_scale.size() ? deadline_scale[cls] : 1.0;
  }

  /// True when the deadline-tightening spike can fire.
  [[nodiscard]] bool deadline_spike_enabled() const noexcept {
    return !metrics::exactly_equal(deadline_spike_factor, 1.0) &&
           deadline_spike_duration > 0.0;
  }

  /// True when any live robustness mechanism is on (deadlines, faults,
  /// ladder, hedging or drain) — the header then carries the v2 fields.
  [[nodiscard]] bool robust() const noexcept;

  /// True when a recorded run of this config can be replayed through the
  /// DES bit-for-bit: only mechanisms with an exact DES mirror are active
  /// (plain uniform deadlines map to mean_patience; per-class scales,
  /// spike, faults, ladder and hedging do not). Non-mappable traces replay
  /// through the deterministic accelerated LiveServer instead.
  [[nodiscard]] bool des_mappable() const noexcept;

  /// The equivalent DES configuration — what `pushpull replay` runs a
  /// DES-mappable recorded trace through. mean_deadline maps to
  /// mean_patience; fault/overload are forwarded verbatim.
  [[nodiscard]] core::HybridConfig hybrid() const;

  /// Materializes the catalog exactly as exp::Scenario::build would
  /// (Zipf(theta) popularities, truncated-geometric lengths from `seed`).
  [[nodiscard]] catalog::Catalog build_catalog() const;

  /// Materializes the class population (Zipf class mix, priorities N..1).
  [[nodiscard]] workload::ClientPopulation build_population() const;
};

}  // namespace pushpull::serve
