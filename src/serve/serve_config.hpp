#pragma once

#include <cstddef>
#include <cstdint>

#include "catalog/catalog.hpp"
#include "core/config.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"

namespace pushpull::serve {

/// Everything one live serving run needs: the workload universe (the §5.1
/// scenario parameters, so the live server and the DES speak the same
/// catalog), the scheduler knobs, and the serving-specific execution knobs.
///
/// The struct deliberately exposes only the *deterministic* subset of
/// core::HybridConfig — no fault injection, crashes, ladder or impatience.
/// Those layers are DES-only for now; keeping them out of the live path is
/// what lets an accelerated run's per-class statistics match its own DES
/// replay bit-for-bit (the differential test in tests/test_serve.cpp).
struct ServeConfig {
  // --- workload universe (mirrors exp::Scenario) --------------------------
  std::size_t num_items = 100;
  double theta = 0.60;
  std::size_t num_classes = 3;
  double class_zipf_theta = 1.0;
  std::uint32_t min_length = 1;
  std::uint32_t max_length = 5;
  double mean_length = 2.0;

  // --- scheduler ----------------------------------------------------------
  std::size_t cutoff = 40;
  double alpha = 0.5;
  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;
  sched::PushPolicyKind push_policy = sched::PushPolicyKind::kFlat;
  /// Mirrored from HybridConfig so replay consumes the identical
  /// bandwidth-demand stream (the live path never blocks — the channel is
  /// unconstrained — but the draw itself must happen to keep RNG parity).
  double mean_bandwidth_demand = 1.0;

  // --- serving ------------------------------------------------------------
  /// Load-generation horizon in broadcast units (at time_scale 1 a
  /// broadcast unit is one wall second, so this reads as seconds).
  double duration = 50.0;
  /// Open-loop offered load: mean request arrivals per broadcast unit.
  double target_qps = 5.0;
  std::uint64_t seed = 20050614;
  /// true = virtual clock, the event loop advances time itself (fast and
  /// bit-reproducible); false = wall clock, the load driver paces arrivals
  /// in real time.
  bool accelerated = false;
  /// Broadcast units per wall second on the wall clock (ignored when
  /// accelerated). 1.0 = real time; 10.0 = 10x fast-forward.
  double time_scale = 1.0;
  /// Producer threads pacing arrivals in wall-clock mode. The *plan* is
  /// pacer-count-invariant (synthesized upfront from one generator); pacers
  /// only affect how faithfully it is paced. Ignored when accelerated.
  std::size_t pacers = 1;
  /// Completion-queue bound; a full queue backpressures the pacers.
  std::size_t queue_capacity = 1024;

  /// Rejects unusable values (zero counts/capacity, non-positive duration,
  /// target_qps, time_scale or lengths, cutoff beyond the catalog) with a
  /// std::invalid_argument naming the offending field.
  void validate() const;

  /// The equivalent DES configuration — what `pushpull replay` runs a
  /// recorded trace through. Fault/resilience layers stay default-inert.
  [[nodiscard]] core::HybridConfig hybrid() const;

  /// Materializes the catalog exactly as exp::Scenario::build would
  /// (Zipf(theta) popularities, truncated-geometric lengths from `seed`).
  [[nodiscard]] catalog::Catalog build_catalog() const;

  /// Materializes the class population (Zipf class mix, priorities N..1).
  [[nodiscard]] workload::ClientPopulation build_population() const;
};

}  // namespace pushpull::serve
