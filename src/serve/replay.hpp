#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "serve/record.hpp"

namespace pushpull::serve {

/// Execution knobs for replay(). Neither changes the numbers: rep r always
/// derives its server seed from its index, and results merge in index
/// order, so any `jobs` value renders the identical report.
struct ReplayOptions {
  /// Server-side replications over the same recorded workload: rep 0 runs
  /// the recorded seed verbatim (the bit-exact bridge back to the live
  /// run); rep r > 0 re-runs the identical trace with a decorrelated
  /// server seed, isolating scheduler-side randomness (bandwidth demands)
  /// from the frozen workload.
  std::size_t reps = 1;
  /// 1 = serial on the calling thread, 0 = hardware concurrency, N = N
  /// workers.
  std::size_t jobs = 1;
};

/// Feeds a recorded live run back through a deterministic engine. Configs
/// inside the DES-mappable subset (ServeConfig::des_mappable) rebuild the
/// catalog, population and HybridConfig from the trace header and run
/// core::HybridServer over the recorded request sequence; configs using
/// the live failure model (deadline scaling/spikes, fault channel, ladder,
/// hedging, drain) re-run the accelerated live engine itself, which is the
/// only engine that implements those semantics. Either way the whole
/// pipeline is a pure function of the file's bytes — replaying the same
/// trace twice is byte-identical, which is what extends the repo's
/// goldens, invariants and obs tooling to live runs. Results come back in
/// rep order.
[[nodiscard]] std::vector<core::SimResult> replay(
    const RecordedRun& run, const ReplayOptions& options = {});

/// Deterministic multi-line rendering of a replay: a header line echoing
/// the recorded config, then per-rep/per-class stat lines in fixed order
/// (obs::render_number throughout). The byte-compare target of the
/// replay-identity tests and CI check.
[[nodiscard]] std::string render_replay_report(
    const RecordedRun& run, const std::vector<core::SimResult>& results);

}  // namespace pushpull::serve
