#include "serve/live_server.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/sched_rules.hpp"
#include "fault/shedding.hpp"
#include "obs/export.hpp"
#include "rng/exponential.hpp"
#include "rng/poisson.hpp"
#include "rng/stream.hpp"

namespace pushpull::serve {

using obs::render_number;

// The parity regions below must be token-identical to HybridServer's; the
// alias lets both engines spell the shared rules the same way.
namespace sched_rules = core::sched_rules;

namespace {

[[nodiscard]] bool is_hedge(const workload::Request& r) noexcept {
  return (r.id & kHedgeIdBit) != 0;
}

}  // namespace

LiveServer::LiveServer(const catalog::Catalog& cat,
                       const workload::ClientPopulation& pop,
                       ServeConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      demand_eng_(
          rng::StreamFactory(config_.seed).stream("bandwidth-demand")),
      patience_eng_(rng::StreamFactory(config_.seed).stream("patience")) {
  config_.validate();
  if (config_.num_items != cat.size()) {
    throw std::invalid_argument(
        "LiveServer: config.num_items disagrees with the catalog");
  }
  if (config_.num_classes != pop.num_classes()) {
    throw std::invalid_argument(
        "LiveServer: config.num_classes disagrees with the population");
  }
  if (config_.cutoff > 0) {
    push_sched_ = sched::make_push_scheduler(config_.push_policy, cat,
                                             config_.cutoff);
  }
  pull_policy_ =
      sched::make_pull_policy(config_.pull_policy, config_.alpha);
  push_waiters_.resize(cat.size());
}

void LiveServer::reset_run() {
  // Same per-run reset discipline as HybridServer::run: fresh named
  // streams, empty queue/park, zeroed counters — a server value can host
  // many runs.
  demand_eng_ = rng::StreamFactory(config_.seed).stream("bandwidth-demand");
  patience_eng_ = rng::StreamFactory(config_.seed).stream("patience");
  if (config_.fault.enabled) {
    channel_.emplace(config_.fault.channel,
                     rng::StreamFactory(config_.seed).stream("fault-channel"));
  } else {
    channel_.reset();
  }
  pull_queue_.clear();
  if (cutoff_boost_ > 0) {
    // Undo a widen-push left over from the previous run.
    cutoff_boost_ = 0;
    push_sched_ = config_.cutoff > 0
                      ? sched::make_push_scheduler(config_.push_policy,
                                                   *catalog_, config_.cutoff)
                      : nullptr;
  }
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  collector_ = std::make_unique<metrics::ClassCollector>(
      population_->num_classes());
  inflight_.reset();
  recorder_ = nullptr;
  seq_ = 0;
  next_arrival_seq_ = 0;
  timers_ = {};
  deadline_seq_.clear();
  hedge_seq_.clear();
  hedged_.clear();
  queued_.clear();
  retry_count_.clear();
  retry_pending_ = 0;
  overload_ = resilience::OverloadController(config_.overload);
  blocking_ewma_.assign(population_->num_classes(), 0.0);
  draining_ = false;
  drain_time_ = 0.0;
  skipped_arrivals_ = 0;
  hedges_posted_ = 0;
  hedges_absorbed_ = 0;
  ledger_ = ConservationLedger{};
  to_settle_ = 0;
  settled_ = 0;
  arrivals_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  corrupted_push_transmissions_ = 0;
  corrupted_pull_transmissions_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;
  max_queue_len_ = 0;
  end_time_ = 0.0;
  queue_depth_ = obs::QuantileTrack{};
}

void LiveServer::note_queue_len(double now) {
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  queue_depth_.add(static_cast<double>(pull_queue_.total_requests()));
}

void LiveServer::settle(double now) {
  ++settled_;
  end_time_ = now;
}

// parity:begin(cutoff-boost, HybridServer=LiveServer)
std::size_t LiveServer::effective_cutoff() const noexcept {
  return sched_rules::effective_cutoff(config_.cutoff, cutoff_boost_,
                                       catalog_->size());
}
// parity:end

// parity:begin(overload-soft-cap, HybridServer=LiveServer)
std::size_t LiveServer::effective_queue_capacity() const noexcept {
  return sched_rules::effective_queue_capacity(overload_.level(),
                                               config_.fault.queue_capacity,
                                               overload_config().capacity_ref);
}

fault::ShedPolicy LiveServer::effective_shed_policy() const noexcept {
  return sched_rules::effective_shed_policy(overload_.level(),
                                            config_.fault.shed_policy);
}
// parity:end

// parity:begin(uplink-admission, HybridServer=LiveServer)
bool LiveServer::uplink_rejected(workload::ClassId cls) const noexcept {
  return sched_rules::uplink_rejected(overload_.level(), cls,
                                      population_->num_classes());
}
// parity:end

void LiveServer::arm_deadline(const workload::Request& request, double now) {
  if (config_.mean_deadline <= 0.0) return;
  // The draw mirrors HybridServer::arm_patience exactly (same stream, same
  // call order), so plain uniform deadlines replay through the DES
  // impatience model bit-for-bit. Scales and the spike multiply the drawn
  // value *after* the draw, keeping stream consumption identical.
  double deadline =
      rng::exponential(patience_eng_, 1.0 / config_.mean_deadline);
  deadline *= config_.deadline_scale_for(request.cls);
  if (config_.deadline_spike_enabled() &&
      now >= config_.deadline_spike_start &&
      now < config_.deadline_spike_start + config_.deadline_spike_duration) {
    deadline *= config_.deadline_spike_factor;
  }
  const std::uint64_t seq = seq_++;
  deadline_seq_[request.id] = seq;
  timers_.push(Timer{now + deadline, seq, TimerKind::kDeadline, request});
}

void LiveServer::disarm_deadline(workload::RequestId id) {
  if (config_.mean_deadline <= 0.0) return;
  deadline_seq_.erase(id);  // the heap entry dies lazily at peek_timer()
}

void LiveServer::remove_hedge_dup(const workload::Request& primary) {
  if (hedged_.erase(primary.id) == 0) return;
  // The duplicate rides the same item entry; drop it with its primary.
  (void)pull_queue_.remove_request(primary.item, primary.id | kHedgeIdBit,
                                   population_->priority(primary.cls));
}

void LiveServer::on_deadline_expired(const workload::Request& request,
                                     double now) {
  deadline_seq_.erase(request.id);
  // The ladder's widen-push can move a request between the pull queue and
  // the push park while its timer is armed, so look in both places rather
  // than trusting the static cutoff test.
  bool removed = false;
  auto& waiters = push_waiters_[request.item];
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (it->id == request.id) {
      waiters.erase(it);
      removed = true;
      break;
    }
  }
  if (!removed) {
    note_queue_len(now);
    removed = pull_queue_.remove_request(request.item, request.id,
                                         population_->priority(request.cls));
    if (removed) {
      queued_.erase(request.id);
      hedge_seq_.erase(request.id);
      remove_hedge_dup(request);
    }
  }
  if (!removed) {
    throw std::logic_error(
        "LiveServer: deadline timer fired for request " +
        std::to_string(request.id) + " (item " +
        std::to_string(request.item) +
        ") that is no longer waiting; timers must be disarmed when a "
        "request is committed to a transmission or dropped");
  }
  retry_count_.erase(request.id);
  collector_->record_abandoned(request.cls);
  tracer_.emit<obs::Category::kTimeout>(now, "timeout", request.item,
                                        request.cls);
  settle(now);
}

void LiveServer::arm_hedge(const workload::Request& request, double now) {
  if (config_.hedge_after <= 0.0) return;
  if (hedged_.contains(request.id)) return;  // one live duplicate at most
  const std::uint64_t seq = seq_++;
  hedge_seq_[request.id] = seq;
  timers_.push(
      Timer{now + config_.hedge_after, seq, TimerKind::kHedge, request});
}

void LiveServer::on_hedge_fire(const workload::Request& request, double now) {
  hedge_seq_.erase(request.id);
  // A full queue suppresses the hedge rather than shedding for it — the
  // duplicate is an optimization, not admitted work.
  const std::size_t capacity = effective_queue_capacity();
  if (capacity > 0 && pull_queue_.total_requests() >= capacity) return;
  note_queue_len(now);
  workload::Request dup = request;
  dup.id |= kHedgeIdBit;
  dup.arrival = now;
  pull_queue_.add(dup, population_->priority(dup.cls),
                  catalog_->length(dup.item),
                  catalog_->probability(dup.item));
  max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
  hedged_.insert(request.id);
  ++hedges_posted_;
  tracer_.emit<obs::Category::kRetry>(now, "hedge", request.item,
                                      request.cls);
  if (!inflight_) start_next(/*just_did_push=*/true, now);
}

void LiveServer::shed_one(const workload::Request& request, double now) {
  retry_count_.erase(request.id);
  collector_->record_shed(request.cls);
  settle(now);
}

bool LiveServer::admit_pull(const workload::Request& request, double now) {
  const std::size_t capacity = effective_queue_capacity();
  if (capacity == 0 || pull_queue_.total_requests() < capacity) return true;
  if (effective_shed_policy() == fault::ShedPolicy::kDropTail) {
    shed_one(request, now);
    return false;
  }
  // Drop-lowest-priority: sacrifice the least important queued request
  // (ties prefer the youngest; an arrival no more important than the victim
  // is the one shed — see fault::LowestPriorityVictim for the exact rule).
  fault::LowestPriorityVictim<workload::Request> scan;
  for (const auto& entry : pull_queue_.entries()) {
    for (const auto& r : entry.pending) {
      if (is_hedge(r)) continue;  // synthetic duplicates are not shed work
      scan.consider(r, population_->priority(r.cls), r.id);
    }
  }
  if (scan.arrival_yields_to(population_->priority(request.cls))) {
    shed_one(request, now);
    return false;
  }
  const workload::Request evicted = *scan.victim();  // copy before mutation
  disarm_deadline(evicted.id);
  pull_queue_.remove_request(evicted.item, evicted.id, scan.priority());
  queued_.erase(evicted.id);
  hedge_seq_.erase(evicted.id);
  remove_hedge_dup(evicted);
  shed_one(evicted, now);
  return true;
}

void LiveServer::requeue_pull(const workload::Request& request, double now) {
  note_queue_len(now);
  if (admit_pull(request, now)) {
    pull_queue_.add(request, population_->priority(request.cls),
                    catalog_->length(request.item),
                    catalog_->probability(request.item));
    max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
    queued_.insert(request.id);
    arm_deadline(request, now);
    arm_hedge(request, now);
  }
  if (!inflight_) start_next(/*just_did_push=*/true, now);
}

void LiveServer::on_ladder_eval(double now) {
  // Mirrors HybridServer::evaluate_overload; a drained or finished run
  // stops rescheduling (the DES's early return).
  if (settled_ == to_settle_ || draining_) return;
  // parity:begin(ladder-occupancy)
  const double occupancy = sched_rules::ladder_occupancy(
      pull_queue_.total_requests(), push_waiters_, config_.cutoff,
      effective_cutoff(), config_.fault.queue_capacity,
      overload_config().capacity_ref);
  const double worst_ewma = sched_rules::worst_blocking_ewma(blocking_ewma_);
  // parity:end
  const resilience::OverloadLevel before = overload_.level();
  const resilience::OverloadLevel after =
      overload_.update(now, occupancy, worst_ewma);
  if (after != before) {
    // The journal stamp precedes the push/pull decisions the new level
    // causes, so a reader sees transitions in causal order.
    if (recorder_) {
      recorder_->record_ladder(now, static_cast<int>(before),
                               static_cast<int>(after));
    }
    apply_overload_level(after, now);
  }
  timers_.push(Timer{now + config_.overload.eval_interval, seq_++,
                     TimerKind::kLadderEval, {}});
}

void LiveServer::apply_overload_level(resilience::OverloadLevel level,
                                      double now) {
  // Shedding policy and soft cap are consulted on the fly by
  // effective_shed_policy()/effective_queue_capacity(); the only action
  // with state to migrate is the widen-push cutoff boost.
  const std::size_t boost =
      level >= resilience::OverloadLevel::kWidenPush
          ? config_.overload.cutoff_step
          : 0;
  if (boost != cutoff_boost_) apply_cutoff_boost(boost, now);
}

void LiveServer::apply_cutoff_boost(std::size_t boost, double now) {
  const std::size_t old_cut = effective_cutoff();
  cutoff_boost_ = boost;
  const std::size_t new_cut = effective_cutoff();
  if (new_cut == old_cut) return;
  push_sched_ = new_cut > 0 ? sched::make_push_scheduler(config_.push_policy,
                                                         *catalog_, new_cut)
                            : nullptr;
  if (new_cut > old_cut) {
    // Widened: the hottest pull items now ride the broadcast. Their queued
    // requests become push waiters; deadline timers stay armed (the client
    // is still waiting for the same item). Hedge duplicates die here —
    // broadcast delivery needs no importance boost.
    note_queue_len(now);
    for (std::size_t item = old_cut; item < new_cut; ++item) {
      auto entry = pull_queue_.extract(static_cast<catalog::ItemId>(item));
      if (!entry.has_value()) continue;
      for (const auto& r : entry->pending) {
        if (is_hedge(r)) {
          hedged_.erase(r.id & ~kHedgeIdBit);
          continue;
        }
        queued_.erase(r.id);
        hedge_seq_.erase(r.id);
        push_waiters_[r.item].push_back(r);
      }
    }
  } else {
    // Shrunk back: parked waiters of de-widened items are pull requests
    // again and re-enter through admission control.
    for (std::size_t item = new_cut; item < old_cut; ++item) {
      std::vector<workload::Request> waiters = std::move(push_waiters_[item]);
      push_waiters_[item].clear();
      for (const auto& r : waiters) {
        disarm_deadline(r.id);
        requeue_pull(r, now);
      }
    }
  }
  if (!inflight_ && settled_ < to_settle_ && new_cut > 0 && !draining_) {
    // A pure-pull server asleep on an empty queue now has a broadcast
    // program to run.
    start_next(/*just_did_push=*/true, now);
  }
}

void LiveServer::dispatch(const Completion& c) {
  switch (c.kind) {
    case CompletionKind::kArrival:
      handle_arrival(c.request, c.time);
      return;
    case CompletionKind::kSlotEnd:
      complete_slot();
      return;
    case CompletionKind::kTimer:
    case CompletionKind::kShutdown:
      return;  // horizon/shutdown markers carry no server state change
  }
}

void LiveServer::handle_arrival(workload::Request request, double observed) {
  // The observed stamp *is* the request's arrival from here on: it is what
  // latency is measured against and what the trace records, so live metrics
  // and the replay of the recording see the same timeline.
  request.arrival = observed;
  ++arrivals_;
  collector_->record_arrival(request.cls);
  if (recorder_) recorder_->record_request(request, observed);
  if (request.item < effective_cutoff()) {
    // Push item: park until the broadcast program brings it around.
    push_waiters_[request.item].push_back(request);
    arm_deadline(request, observed);
    return;
  }
  if (uplink_rejected(request.cls)) {
    // The ladder's admission control refuses the class at the uplink; the
    // request never enters server state.
    collector_->record_rejected(request.cls);
    settle(observed);
    return;
  }
  note_queue_len(observed);
  if (!admit_pull(request, observed)) return;  // shed by the bounded queue
  pull_queue_.add(request, population_->priority(request.cls),
                  catalog_->length(request.item),
                  catalog_->probability(request.item));
  max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
  queued_.insert(request.id);
  arm_deadline(request, observed);
  arm_hedge(request, observed);
  if (!inflight_) {
    // Pure-pull server asleep on an empty queue: this arrival wakes it.
    start_next(/*just_did_push=*/true, observed);
  }
}

void LiveServer::start_next(bool just_did_push, double now) {
  if (settled_ == to_settle_) {
    inflight_.reset();
    return;
  }
  if (draining_) {
    // The flush: pull entries back-to-back, no further broadcasts. Parked
    // push waiters are in_flight_at_drain by definition.
    if (!pull_queue_.empty()) {
      start_pull(now);
    } else {
      inflight_.reset();  // idle until a retry backoff matures (or done)
    }
    return;
  }
  if (effective_cutoff() == 0) {
    if (pull_queue_.empty()) {
      inflight_.reset();  // idle until the next arrival wakes us
      return;
    }
    start_pull(now);
    return;
  }
  // parity:begin(push-pull-alternation)
  // Strict alternation: one pull opportunity after every push.
  if (just_did_push && !pull_queue_.empty()) {
    start_pull(now);
  } else {
    start_push(now);
  }
  // parity:end
}

void LiveServer::start_push(double now) {
  // parity:begin(catch-at-start, disarm_patience=disarm_deadline)
  const catalog::ItemId item = push_sched_->next();
  // Only clients already parked when the transmission starts catch it.
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  // Once the item is on air, the waiting clients are committed to it.
  for (const auto& r : catching) disarm_deadline(r.id);
  // parity:end
  if (recorder_) recorder_->record_decision(true, now, item, catching.size());
  InFlight slot;
  slot.push = true;
  slot.item = item;
  slot.end = now + catalog_->length(item);
  slot.end_seq = seq_++;  // where the DES schedules the tx-end event
  slot.pending = std::move(catching);
  inflight_ = std::move(slot);
}

void LiveServer::start_pull(double now) {
  note_queue_len(now);
  // parity:begin(pull-priority-context)
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len = now > 0.0 ? queue_len_area_ / now : 1.0;
  // parity:end
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "LiveServer: start_pull on an empty pull queue; start_next must "
        "only take a pull opportunity while entries are pending");
  }
  note_queue_len(now);
  for (const auto& r : entry->pending) {
    if (is_hedge(r)) {
      hedged_.erase(r.id & ~kHedgeIdBit);
      continue;
    }
    disarm_deadline(r.id);
    queued_.erase(r.id);
    hedge_seq_.erase(r.id);
  }
  // Drawn even though the live channel is unconstrained: consuming the
  // bandwidth-demand stream identically is what keeps the DES replay of a
  // recorded run bit-equal to the live run.
  if (config_.mean_bandwidth_demand > 0.0) {
    (void)rng::poisson(demand_eng_, config_.mean_bandwidth_demand);
  }
  if (config_.overload.enabled) {
    // The live channel never blocks, so the blocking EWMA only decays —
    // the same update HybridServer applies with admitted == true.
    const workload::ClassId cls = sched_rules::owning_class(*entry);
    blocking_ewma_[cls] *= 1.0 - config_.overload.ewma_alpha;
  }
  if (recorder_) {
    recorder_->record_decision(false, now, entry->item,
                               entry->pending.size());
  }
  InFlight slot;
  slot.push = false;
  slot.item = entry->item;
  slot.end = now + entry->length;
  slot.end_seq = seq_++;
  slot.pending = std::move(entry->pending);
  inflight_ = std::move(slot);
}

void LiveServer::complete_slot() {
  if (!inflight_.has_value()) {
    throw std::logic_error("LiveServer: slot completion with nothing on air");
  }
  const double now = inflight_->end;
  const bool was_push = inflight_->push;
  const catalog::ItemId item = inflight_->item;
  (was_push ? push_transmissions_ : pull_transmissions_) += 1;
  const std::vector<workload::Request> pending = std::move(inflight_->pending);
  inflight_.reset();
  const bool corrupted = channel_.has_value() && channel_->corrupts();
  if (was_push) {
    if (corrupted) {
      // A corrupted broadcast needs no re-request: the item comes around
      // again next cycle, so the waiters just rejoin the (re-armed) park
      // and their delay grows by one period. Unless the ladder shrank the
      // item out of the broadcast program while this replica was on air —
      // then the park would strand them forever (no next cycle, and the
      // shrink migration can't see passengers of an in-flight slot), so
      // they are pull requests again and re-enter through admission
      // control. The wake is left to the start_next below so the slot
      // decision sees every passenger queued, as the DES does.
      ++corrupted_push_transmissions_;
      // parity:begin(corrupt-repark)
      const bool still_broadcast =
          sched_rules::repark_after_corruption(item, effective_cutoff());
      // parity:end
      for (const auto& r : pending) {
        collector_->record_corrupted(r.cls);
        if (still_broadcast) {
          push_waiters_[item].push_back(r);
          arm_deadline(r, now);
          continue;
        }
        note_queue_len(now);
        if (admit_pull(r, now)) {
          pull_queue_.add(r, population_->priority(r.cls),
                          catalog_->length(r.item),
                          catalog_->probability(r.item));
          max_queue_len_ =
              std::max(max_queue_len_, pull_queue_.total_requests());
          queued_.insert(r.id);
          arm_deadline(r, now);
          arm_hedge(r, now);
        }
      }
    } else {
      for (const auto& r : pending) deliver(r, true, now);
    }
    start_next(/*just_did_push=*/true, now);
    return;
  }
  if (corrupted) {
    ++corrupted_pull_transmissions_;
    for (const auto& r : pending) {
      if (is_hedge(r)) continue;  // the duplicate dies with the airtime
      collector_->record_corrupted(r.cls);
      const std::uint32_t attempt = ++retry_count_[r.id];
      if (attempt > config_.fault.retry.max_retries) {
        retry_count_.erase(r.id);
        collector_->record_lost(r.cls);
        settle(now);
        continue;
      }
      collector_->record_retry(r.cls);
      tracer_.emit<obs::Category::kRetry>(now, "retry", r.item, attempt);
      timers_.push(Timer{now + config_.fault.retry.backoff_delay(attempt),
                         seq_++, TimerKind::kRetry, r});
      ++retry_pending_;
    }
  } else {
    for (const auto& r : pending) {
      if (is_hedge(r)) {
        ++hedges_absorbed_;
        continue;
      }
      retry_count_.erase(r.id);
      deliver(r, false, now);
    }
  }
  start_next(/*just_did_push=*/false, now);
}

void LiveServer::deliver(const workload::Request& r, bool via_push,
                         double now) {
  // parity:begin(deliver-at-end, request=r)
  sched_rules::record_delivery(*collector_, r, now, via_push);
  // parity:end
  settle(now);
}

const LiveServer::Timer* LiveServer::peek_timer() {
  while (!timers_.empty()) {
    const Timer& t = timers_.top();
    bool stale = false;
    switch (t.kind) {
      case TimerKind::kDeadline: {
        const auto it = deadline_seq_.find(t.request.id);
        stale = it == deadline_seq_.end() || it->second != t.seq;
        break;
      }
      case TimerKind::kHedge: {
        const auto it = hedge_seq_.find(t.request.id);
        stale = it == hedge_seq_.end() || it->second != t.seq ||
                !queued_.contains(t.request.id);
        break;
      }
      case TimerKind::kLadderEval:
        stale = draining_;
        break;
      case TimerKind::kRetry:
        break;  // never cancelled — the backed-off request must resolve
    }
    if (!stale) return &t;
    timers_.pop();
  }
  return nullptr;
}

void LiveServer::fire_timer(const Timer& timer) {
  switch (timer.kind) {
    case TimerKind::kDeadline:
      on_deadline_expired(timer.request, timer.time);
      return;
    case TimerKind::kRetry:
      --retry_pending_;
      requeue_pull(timer.request, timer.time);
      return;
    case TimerKind::kLadderEval:
      on_ladder_eval(timer.time);
      return;
    case TimerKind::kHedge:
      on_hedge_fire(timer.request, timer.time);
      return;
  }
}

void LiveServer::advance_to(double now) {
  while (true) {
    const Timer* t = peek_timer();
    const bool slot_due = inflight_.has_value() && inflight_->end <= now;
    const bool timer_due = t != nullptr && t->time <= now;
    if (slot_due &&
        (!timer_due || inflight_->end < t->time ||
         (inflight_->end == t->time && inflight_->end_seq < t->seq))) {
      complete_slot();
      continue;
    }
    if (timer_due) {
      const Timer fired = *t;
      timers_.pop();
      fire_timer(fired);
      continue;
    }
    return;
  }
}

void LiveServer::engage_drain(double now, std::uint64_t skipped) {
  draining_ = true;
  drain_time_ = now;
  skipped_arrivals_ = skipped;
  to_settle_ = arrivals_;  // only injected requests can still settle
  if (recorder_) recorder_->record_drain(now, skipped);
  tracer_.emit<obs::Category::kDrain>(now, "drain",
                                      static_cast<std::uint64_t>(skipped));
}

bool LiveServer::pull_side_drained() const noexcept {
  return queued_.empty() && retry_pending_ == 0 && !inflight_.has_value();
}

std::uint64_t LiveServer::structural_in_flight() const noexcept {
  std::uint64_t waiting = 0;
  for (const auto& waiters : push_waiters_) waiting += waiters.size();
  waiting += queued_.size();
  if (inflight_.has_value()) {
    for (const auto& r : inflight_->pending) {
      if (!is_hedge(r)) ++waiting;
    }
  }
  waiting += retry_pending_;
  return waiting;
}

void LiveServer::finalize_ledger() {
  const metrics::ClassStats agg = collector_->aggregate();
  ledger_ = ConservationLedger{};
  ledger_.injected = arrivals_;
  ledger_.delivered = agg.served;
  ledger_.timed_out = agg.abandoned;
  ledger_.rejected = agg.rejected;
  ledger_.shed = agg.shed;
  ledger_.lost = agg.lost;
  ledger_.in_flight_at_drain = structural_in_flight();
  if (!draining_ && ledger_.in_flight_at_drain != 0) {
    throw std::logic_error(
        "LiveServer: conservation violation — " +
        std::to_string(ledger_.in_flight_at_drain) +
        " requests still structurally in flight after a completed "
        "(non-drained) run");
  }
  if (!ledger_.balanced()) {
    throw std::logic_error(
        "LiveServer: conservation violation — ledger does not balance: " +
        ledger_.render_json());
  }
  if (agg.blocked != 0) {
    throw std::logic_error(
        "LiveServer: conservation violation — the live channel cannot "
        "block transmissions");
  }
}

ServeReport LiveServer::make_report(const CompletionQueue& queue) const {
  ServeReport report;
  report.accelerated = config_.accelerated;
  report.duration = config_.duration;
  report.target_qps = config_.target_qps;
  report.end_time = end_time_;
  report.arrivals = arrivals_;
  report.served = collector_->aggregate().served;
  report.push_transmissions = push_transmissions_;
  report.pull_transmissions = pull_transmissions_;
  report.achieved_qps =
      end_time_ > 0.0 ? static_cast<double>(arrivals_) / end_time_ : 0.0;
  report.mean_pull_queue_len =
      end_time_ > 0.0 ? queue_len_area_ / end_time_ : 0.0;
  report.max_pull_queue_len = max_queue_len_;
  report.queue_depth.name = "pull_queue_len";
  report.queue_depth.count = queue_depth_.moments().count();
  report.queue_depth.mean = queue_depth_.moments().mean();
  report.queue_depth.min = queue_depth_.moments().min();
  report.queue_depth.max = queue_depth_.moments().max();
  if (report.queue_depth.count > 0) {
    report.queue_depth.p50 = queue_depth_.p50();
    report.queue_depth.p90 = queue_depth_.p90();
    report.queue_depth.p99 = queue_depth_.p99();
  }
  report.cq_posted = queue.posted();
  report.cq_high_water = queue.high_water();
  report.per_class = collector_->all();
  report.robust = config_.robust();
  const metrics::ClassStats agg = collector_->aggregate();
  report.timed_out = agg.abandoned;
  report.retries = agg.retries;
  report.lost = agg.lost;
  report.shed = agg.shed;
  report.rejected = agg.rejected;
  report.corrupted = agg.corrupted;
  report.corrupted_push_transmissions = corrupted_push_transmissions_;
  report.corrupted_pull_transmissions = corrupted_pull_transmissions_;
  report.hedges_posted = hedges_posted_;
  report.hedges_absorbed = hedges_absorbed_;
  report.ladder_transitions = overload_.transitions().size();
  // parity:begin(overload-transition-export, result=report)
  sched_rules::export_overload(report, overload_);
  // parity:end
  report.drained = draining_;
  report.drain_time = drain_time_;
  report.skipped_arrivals = skipped_arrivals_;
  report.ledger = ledger_;
  return report;
}

ServeReport LiveServer::run_accelerated(LoadDriver& driver,
                                        TraceRecorder* recorder) {
  reset_run();
  recorder_ = recorder;
  to_settle_ = driver.remaining();
  CompletionQueue queue(config_.queue_capacity);
  VirtualClock clock;
  // Sequence numbering mirrors the DES id assignment order in
  // HybridServer::run: first ladder eval, then the arrivals, then the
  // initial serve_next at t=0, then dispatch-time schedules.
  if (config_.overload.enabled) {
    timers_.push(Timer{config_.overload.eval_interval, seq_++,
                       TimerKind::kLadderEval, {}});
  }
  next_arrival_seq_ = seq_;
  seq_ += to_settle_;
  if (config_.cutoff > 0 && to_settle_ > 0) {
    ++seq_;  // the DES serve_next event at t=0
    start_next(/*just_did_push=*/true, 0.0);
  }
  while (true) {
    if (!draining_ && settled_ == to_settle_) break;
    if (draining_ && pull_side_drained()) break;
    // Candidate selection: the minimum (time, seq) among the next planned
    // arrival, the in-flight transmission end and the timer-heap top —
    // exactly the DES heap's pop order.
    const workload::Request* next = draining_ ? nullptr : driver.peek();
    const Timer* timer = peek_timer();
    double best_time = 0.0;
    std::uint64_t best_seq = 0;
    int which = -1;  // 0 = arrival, 1 = slot end, 2 = timer
    if (next != nullptr) {
      best_time = next->arrival;
      best_seq = next_arrival_seq_;
      which = 0;
    }
    if (inflight_.has_value() &&
        (which < 0 || inflight_->end < best_time ||
         (inflight_->end == best_time && inflight_->end_seq < best_seq))) {
      best_time = inflight_->end;
      best_seq = inflight_->end_seq;
      which = 1;
    }
    if (timer != nullptr &&
        (which < 0 || timer->time < best_time ||
         (timer->time == best_time && timer->seq < best_seq))) {
      best_time = timer->time;
      best_seq = timer->seq;
      which = 2;
    }
    if (which < 0) {
      throw std::logic_error(
          "LiveServer: stalled — plan exhausted and server idle while "
          "requests remain unsettled");
    }
    if (config_.drain_after > 0.0 && !draining_ &&
        best_time >= config_.drain_after) {
      // The run crosses the drain instant before its next event: stop
      // admission there and re-select without the remaining arrivals.
      engage_drain(config_.drain_after, driver.remaining());
      continue;
    }
    if (which == 2) {
      const Timer fired = *timer;
      timers_.pop();
      clock.advance_to(fired.time);
      fire_timer(fired);
      continue;
    }
    Completion c;
    if (which == 0) {
      c.kind = CompletionKind::kArrival;
      c.time = next->arrival;
      c.request = driver.take();
      ++next_arrival_seq_;
    } else {
      c.kind = CompletionKind::kSlotEnd;
      c.time = inflight_->end;
    }
    if (!queue.try_post(c)) {
      throw std::logic_error(
          "LiveServer: completion queue rejected a post in accelerated "
          "mode (queue_capacity must admit the strictly alternating "
          "post/pop pattern)");
    }
    const std::optional<Completion> popped = queue.pop(0.0);
    clock.advance_to(popped->time);
    dispatch(*popped);
  }
  note_queue_len(std::max(end_time_, drain_time_));
  finalize_ledger();
  if (recorder_) recorder_->seal(ledger_);
  return make_report(queue);
}

ServeReport LiveServer::run_realtime(CompletionQueue& queue, Clock& clock,
                                     std::uint64_t planned,
                                     TraceRecorder* recorder) {
  reset_run();
  recorder_ = recorder;
  to_settle_ = planned;
  const std::uint64_t planned_total = planned;
  bool load_done = false;
  if (config_.overload.enabled) {
    timers_.push(Timer{config_.overload.eval_interval, seq_++,
                       TimerKind::kLadderEval, {}});
  }
  if (config_.cutoff > 0 && to_settle_ > 0) {
    ++seq_;
    start_next(/*just_did_push=*/true, 0.0);
  }
  while (true) {
    if (!draining_ && settled_ == to_settle_) break;
    if (draining_ && pull_side_drained()) break;
    if (!draining_) {
      const bool external =
          drain_flag_ != nullptr &&
          drain_flag_->load(std::memory_order_relaxed);
      const bool horizon =
          config_.drain_after > 0.0 && clock.now() >= config_.drain_after;
      if (external || horizon) {
        const double at = horizon && !external
                              ? config_.drain_after
                              : clock.now();
        advance_to(at);
        engage_drain(at, planned_total - arrivals_);
        continue;
      }
    }
    if (!load_done) {
      double timeout = 0.05;
      if (inflight_) {
        timeout = std::min(timeout, clock.seconds_until(inflight_->end));
      }
      if (const Timer* t = peek_timer()) {
        timeout = std::min(timeout, clock.seconds_until(t->time));
      }
      const std::optional<Completion> c =
          queue.pop(std::max(timeout, 0.0));
      if (c.has_value()) {
        if (c->kind == CompletionKind::kArrival) {
          // Order against the logical timeline: slots and timers due
          // before this arrival's stamp fire first, so the arrival can
          // only be delivered by a transmission ending after it was
          // observed.
          advance_to(c->time);
          if (!draining_) {
            handle_arrival(c->request, c->time);
          }
          // A drained loop discards late arrivals: they are part of the
          // skipped count stamped at engagement.
        }
      } else if (queue.closed() && queue.depth() == 0) {
        load_done = true;
      }
    } else if (inflight_ || peek_timer() != nullptr) {
      // Drain phase: no more producers; pace out the remaining work.
      double next_at = std::numeric_limits<double>::infinity();
      if (inflight_) next_at = inflight_->end;
      if (const Timer* t = peek_timer()) {
        next_at = std::min(next_at, t->time);
      }
      const double budget = clock.seconds_until(next_at);
      if (budget > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(budget));
      }
    } else if (draining_) {
      break;  // nothing on air, nothing queued, nothing pending
    } else {
      throw std::logic_error(
          "LiveServer: stalled — load ended and server idle while "
          "requests remain unsettled");
    }
    advance_to(clock.now());
  }
  note_queue_len(std::max(end_time_, drain_time_));
  finalize_ledger();
  if (recorder_) recorder_->seal(ledger_);
  return make_report(queue);
}

std::string render_serve_report(const ServeReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"serve1\""
      << ",\"accelerated\":" << (report.accelerated ? 1 : 0)
      << ",\"duration\":" << render_number(report.duration)
      << ",\"target_qps\":" << render_number(report.target_qps)
      << ",\"achieved_qps\":" << render_number(report.achieved_qps)
      << ",\"end_time\":" << render_number(report.end_time)
      << ",\"arrivals\":" << report.arrivals
      << ",\"served\":" << report.served
      << ",\"push_tx\":" << report.push_transmissions
      << ",\"pull_tx\":" << report.pull_transmissions
      << ",\"mean_pull_queue_len\":"
      << render_number(report.mean_pull_queue_len)
      << ",\"max_pull_queue_len\":" << report.max_pull_queue_len
      << ",\"queue_depth\":{\"count\":" << report.queue_depth.count
      << ",\"mean\":" << render_number(report.queue_depth.mean)
      << ",\"max\":" << render_number(report.queue_depth.max)
      << ",\"p50\":" << render_number(report.queue_depth.p50)
      << ",\"p90\":" << render_number(report.queue_depth.p90)
      << ",\"p99\":" << render_number(report.queue_depth.p99) << "}"
      << ",\"cq_posted\":" << report.cq_posted
      << ",\"cq_high_water\":" << report.cq_high_water;
  if (report.robust) {
    out << ",\"timed_out\":" << report.timed_out
        << ",\"retries\":" << report.retries
        << ",\"lost\":" << report.lost << ",\"shed\":" << report.shed
        << ",\"rejected\":" << report.rejected
        << ",\"corrupted\":" << report.corrupted
        << ",\"hedges_posted\":" << report.hedges_posted
        << ",\"hedges_absorbed\":" << report.hedges_absorbed
        << ",\"ladder_transitions\":" << report.ladder_transitions
        << ",\"max_overload_level\":"
        << static_cast<int>(report.max_overload_level)
        << ",\"drained\":" << (report.drained ? 1 : 0)
        << ",\"drain_time\":" << render_number(report.drain_time)
        << ",\"skipped_arrivals\":" << report.skipped_arrivals
        << ",\"ledger\":" << report.ledger.render_json();
  }
  out << "}\n";
  for (std::size_t cls = 0; cls < report.per_class.size(); ++cls) {
    const metrics::ClassStats& s = report.per_class[cls];
    out << "{\"class\":" << cls << ",\"arrived\":" << s.arrived
        << ",\"served\":" << s.served
        << ",\"served_push\":" << s.served_push
        << ",\"served_pull\":" << s.served_pull
        << ",\"mean_wait\":" << render_number(s.wait.mean())
        << ",\"wait_p50\":"
        << render_number(s.wait_p50.count() ? s.wait_p50.value() : 0.0)
        << ",\"wait_p95\":"
        << render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
        << ",\"wait_p99\":"
        << render_number(s.wait_p99.count() ? s.wait_p99.value() : 0.0);
    if (report.robust) {
      out << ",\"timed_out\":" << s.abandoned
          << ",\"retries\":" << s.retries << ",\"shed\":" << s.shed
          << ",\"lost\":" << s.lost << ",\"rejected\":" << s.rejected;
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace pushpull::serve
