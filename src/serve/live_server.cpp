#include "serve/live_server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "rng/poisson.hpp"
#include "rng/stream.hpp"

namespace pushpull::serve {

using obs::render_number;

LiveServer::LiveServer(const catalog::Catalog& cat,
                       const workload::ClientPopulation& pop,
                       ServeConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      demand_eng_(
          rng::StreamFactory(config_.seed).stream("bandwidth-demand")) {
  config_.validate();
  if (config_.num_items != cat.size()) {
    throw std::invalid_argument(
        "LiveServer: config.num_items disagrees with the catalog");
  }
  if (config_.num_classes != pop.num_classes()) {
    throw std::invalid_argument(
        "LiveServer: config.num_classes disagrees with the population");
  }
  if (config_.cutoff > 0) {
    push_sched_ = sched::make_push_scheduler(config_.push_policy, cat,
                                             config_.cutoff);
  }
  pull_policy_ =
      sched::make_pull_policy(config_.pull_policy, config_.alpha);
  push_waiters_.resize(cat.size());
}

void LiveServer::reset_run() {
  // Same per-run reset discipline as HybridServer::run: fresh named stream,
  // empty queue/park, zeroed counters — a server value can host many runs.
  demand_eng_ = rng::StreamFactory(config_.seed).stream("bandwidth-demand");
  pull_queue_.clear();
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  collector_ = std::make_unique<metrics::ClassCollector>(
      population_->num_classes());
  inflight_.reset();
  recorder_ = nullptr;
  to_settle_ = 0;
  settled_ = 0;
  arrivals_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;
  max_queue_len_ = 0;
  end_time_ = 0.0;
  queue_depth_ = obs::QuantileTrack{};
}

void LiveServer::note_queue_len(double now) {
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  queue_depth_.add(static_cast<double>(pull_queue_.total_requests()));
}

void LiveServer::dispatch(const Completion& c) {
  switch (c.kind) {
    case CompletionKind::kArrival:
      handle_arrival(c.request, c.time);
      return;
    case CompletionKind::kSlotEnd:
      complete_slot();
      return;
    case CompletionKind::kTimer:
    case CompletionKind::kShutdown:
      return;  // horizon/shutdown markers carry no server state change
  }
}

void LiveServer::handle_arrival(workload::Request request, double observed) {
  // The observed stamp *is* the request's arrival from here on: it is what
  // latency is measured against and what the trace records, so live metrics
  // and the DES replay of the recording see the same timeline.
  request.arrival = observed;
  ++arrivals_;
  collector_->record_arrival(request.cls);
  if (recorder_) recorder_->record_request(request, observed);
  if (request.item < config_.cutoff) {
    // Push item: park until the broadcast program brings it around.
    push_waiters_[request.item].push_back(request);
    return;
  }
  note_queue_len(observed);
  pull_queue_.add(request, population_->priority(request.cls),
                  catalog_->length(request.item),
                  catalog_->probability(request.item));
  max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
  if (!inflight_) {
    // Pure-pull server asleep on an empty queue: this arrival wakes it.
    start_next(/*just_did_push=*/true, observed);
  }
}

void LiveServer::start_next(bool just_did_push, double now) {
  if (settled_ == to_settle_) {
    inflight_.reset();
    return;
  }
  if (config_.cutoff == 0) {
    if (pull_queue_.empty()) {
      inflight_.reset();  // idle until the next arrival wakes us
      return;
    }
    start_pull(now);
    return;
  }
  // Strict alternation: one pull opportunity after every push.
  if (just_did_push && !pull_queue_.empty()) {
    start_pull(now);
  } else {
    start_push(now);
  }
}

void LiveServer::start_push(double now) {
  const catalog::ItemId item = push_sched_->next();
  // Only clients already parked when the transmission starts catch it.
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  if (recorder_) recorder_->record_decision(true, now, item, catching.size());
  InFlight slot;
  slot.push = true;
  slot.item = item;
  slot.end = now + catalog_->length(item);
  slot.pending = std::move(catching);
  inflight_ = std::move(slot);
}

void LiveServer::start_pull(double now) {
  note_queue_len(now);
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len = now > 0.0 ? queue_len_area_ / now : 1.0;
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "LiveServer: start_pull on an empty pull queue; start_next must "
        "only take a pull opportunity while entries are pending");
  }
  note_queue_len(now);
  // Drawn even though the live channel is unconstrained: consuming the
  // bandwidth-demand stream identically is what keeps the DES replay of a
  // recorded run bit-equal to the live run.
  if (config_.mean_bandwidth_demand > 0.0) {
    (void)rng::poisson(demand_eng_, config_.mean_bandwidth_demand);
  }
  if (recorder_) {
    recorder_->record_decision(false, now, entry->item,
                               entry->pending.size());
  }
  InFlight slot;
  slot.push = false;
  slot.item = entry->item;
  slot.end = now + entry->length;
  slot.pending = std::move(entry->pending);
  inflight_ = std::move(slot);
}

void LiveServer::complete_slot() {
  if (!inflight_.has_value()) {
    throw std::logic_error("LiveServer: slot completion with nothing on air");
  }
  const double now = inflight_->end;
  const bool was_push = inflight_->push;
  (was_push ? push_transmissions_ : pull_transmissions_) += 1;
  const std::vector<workload::Request> delivered =
      std::move(inflight_->pending);
  inflight_.reset();
  for (const auto& r : delivered) {
    collector_->record_served(r.cls, now - r.arrival, was_push);
    ++settled_;
    end_time_ = now;
  }
  start_next(was_push, now);
}

ServeReport LiveServer::make_report(const CompletionQueue& queue) const {
  ServeReport report;
  report.accelerated = config_.accelerated;
  report.duration = config_.duration;
  report.target_qps = config_.target_qps;
  report.end_time = end_time_;
  report.arrivals = arrivals_;
  report.served = collector_->aggregate().served;
  report.push_transmissions = push_transmissions_;
  report.pull_transmissions = pull_transmissions_;
  report.achieved_qps =
      end_time_ > 0.0 ? static_cast<double>(arrivals_) / end_time_ : 0.0;
  report.mean_pull_queue_len =
      end_time_ > 0.0 ? queue_len_area_ / end_time_ : 0.0;
  report.max_pull_queue_len = max_queue_len_;
  report.queue_depth.name = "pull_queue_len";
  report.queue_depth.count = queue_depth_.moments().count();
  report.queue_depth.mean = queue_depth_.moments().mean();
  report.queue_depth.min = queue_depth_.moments().min();
  report.queue_depth.max = queue_depth_.moments().max();
  if (report.queue_depth.count > 0) {
    report.queue_depth.p50 = queue_depth_.p50();
    report.queue_depth.p90 = queue_depth_.p90();
    report.queue_depth.p99 = queue_depth_.p99();
  }
  report.cq_posted = queue.posted();
  report.cq_high_water = queue.high_water();
  report.per_class = collector_->all();
  return report;
}

ServeReport LiveServer::run_accelerated(LoadDriver& driver,
                                        TraceRecorder* recorder) {
  reset_run();
  recorder_ = recorder;
  to_settle_ = driver.remaining();
  CompletionQueue queue(config_.queue_capacity);
  VirtualClock clock;
  if (config_.cutoff > 0 && to_settle_ > 0) {
    start_next(/*just_did_push=*/true, 0.0);
  }
  while (settled_ < to_settle_) {
    // The DES tie rule, applied by the consumer: an arrival at the same
    // instant as a slot end dispatches first (its event was scheduled
    // earlier), so the post-push pull opportunity can see it.
    const workload::Request* next = driver.peek();
    Completion c;
    if (next && (!inflight_ || next->arrival <= inflight_->end)) {
      c.kind = CompletionKind::kArrival;
      c.time = next->arrival;
      c.request = driver.take();
    } else if (inflight_) {
      c.kind = CompletionKind::kSlotEnd;
      c.time = inflight_->end;
    } else {
      throw std::logic_error(
          "LiveServer: stalled — plan exhausted and server idle while "
          "requests remain unsettled");
    }
    if (!queue.try_post(c)) {
      throw std::logic_error(
          "LiveServer: completion queue rejected a post in accelerated "
          "mode (queue_capacity must admit the strictly alternating "
          "post/pop pattern)");
    }
    const std::optional<Completion> popped = queue.pop(0.0);
    clock.advance_to(popped->time);
    dispatch(*popped);
  }
  note_queue_len(end_time_);
  if (recorder_) recorder_->finish();
  return make_report(queue);
}

ServeReport LiveServer::run_realtime(CompletionQueue& queue, Clock& clock,
                                     std::uint64_t planned,
                                     TraceRecorder* recorder) {
  reset_run();
  recorder_ = recorder;
  to_settle_ = planned;
  bool load_done = false;
  if (config_.cutoff > 0 && to_settle_ > 0) {
    start_next(/*just_did_push=*/true, 0.0);
  }
  while (settled_ < to_settle_) {
    if (!load_done) {
      const double timeout =
          inflight_ ? clock.seconds_until(inflight_->end) : 0.05;
      const std::optional<Completion> c = queue.pop(timeout);
      if (c.has_value()) {
        if (c->kind == CompletionKind::kArrival) {
          // Order against the logical timeline: slots ending before this
          // arrival's stamp complete first, so the arrival can only be
          // delivered by a transmission ending after it was observed.
          while (inflight_ && inflight_->end <= c->time) complete_slot();
          dispatch(*c);
        }
        continue;
      }
      if (queue.closed() && queue.depth() == 0) {
        load_done = true;
        continue;
      }
    } else if (inflight_) {
      // Drain phase: no more producers; pace out the remaining slots.
      const double budget = clock.seconds_until(inflight_->end);
      if (budget > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(budget));
      }
    } else {
      throw std::logic_error(
          "LiveServer: stalled — load ended and server idle while "
          "requests remain unsettled");
    }
    const double now = clock.now();
    while (inflight_ && inflight_->end <= now) complete_slot();
  }
  note_queue_len(end_time_);
  if (recorder_) recorder_->finish();
  return make_report(queue);
}

std::string render_serve_report(const ServeReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"serve1\""
      << ",\"accelerated\":" << (report.accelerated ? 1 : 0)
      << ",\"duration\":" << render_number(report.duration)
      << ",\"target_qps\":" << render_number(report.target_qps)
      << ",\"achieved_qps\":" << render_number(report.achieved_qps)
      << ",\"end_time\":" << render_number(report.end_time)
      << ",\"arrivals\":" << report.arrivals
      << ",\"served\":" << report.served
      << ",\"push_tx\":" << report.push_transmissions
      << ",\"pull_tx\":" << report.pull_transmissions
      << ",\"mean_pull_queue_len\":"
      << render_number(report.mean_pull_queue_len)
      << ",\"max_pull_queue_len\":" << report.max_pull_queue_len
      << ",\"queue_depth\":{\"count\":" << report.queue_depth.count
      << ",\"mean\":" << render_number(report.queue_depth.mean)
      << ",\"max\":" << render_number(report.queue_depth.max)
      << ",\"p50\":" << render_number(report.queue_depth.p50)
      << ",\"p90\":" << render_number(report.queue_depth.p90)
      << ",\"p99\":" << render_number(report.queue_depth.p99) << "}"
      << ",\"cq_posted\":" << report.cq_posted
      << ",\"cq_high_water\":" << report.cq_high_water << "}\n";
  for (std::size_t cls = 0; cls < report.per_class.size(); ++cls) {
    const metrics::ClassStats& s = report.per_class[cls];
    out << "{\"class\":" << cls << ",\"arrived\":" << s.arrived
        << ",\"served\":" << s.served
        << ",\"served_push\":" << s.served_push
        << ",\"served_pull\":" << s.served_pull
        << ",\"mean_wait\":" << render_number(s.wait.mean())
        << ",\"wait_p50\":"
        << render_number(s.wait_p50.count() ? s.wait_p50.value() : 0.0)
        << ",\"wait_p95\":"
        << render_number(s.wait_p95.count() ? s.wait_p95.value() : 0.0)
        << ",\"wait_p99\":"
        << render_number(s.wait_p99.count() ? s.wait_p99.value() : 0.0)
        << "}\n";
  }
  return out.str();
}

}  // namespace pushpull::serve
