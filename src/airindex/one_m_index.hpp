#pragma once

#include <cstddef>
#include <cstdint>

#include "catalog/catalog.hpp"

namespace pushpull::airindex {

/// (1, m) air indexing for the push broadcast (Imielinski, Viswanathan,
/// Badrinath — "Energy Efficient Indexing on Air", 1994 line of work).
///
/// Battery-powered clients should doze, not listen: the broadcast cycle is
/// split into m segments, each prefixed with a full index (airtime
/// `index_airtime`). A client wakes at a random instant, listens one unit
/// to learn when the next index starts, dozes, reads the index, dozes again
/// until its item's slot, and finally receives the item. Two metrics
/// result:
///
///   access time — wake-up to delivery (grows with the index overhead),
///   tuning time — time actively listening (shrinks dramatically),
///
/// with the classic optimum m* = sqrt(data airtime / index airtime)
/// minimizing access time.
///
/// This module scores the paper's flat push cycle under (1, m) indexing —
/// the energy dimension the paper's delay-only evaluation leaves out.
class OneMIndexModel {
 public:
  /// `cutoff`: the push set [0, cutoff) of `cat` is broadcast; must be
  /// >= 1. `index_airtime`: airtime of one full index copy, > 0.
  /// `m`: number of index copies per cycle, >= 1.
  OneMIndexModel(const catalog::Catalog& cat, std::size_t cutoff,
                 double index_airtime, std::size_t m);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] double index_airtime() const noexcept {
    return index_airtime_;
  }

  /// Data airtime per cycle, Σ_{i<K} L_i.
  [[nodiscard]] double data_airtime() const noexcept { return data_; }

  /// Full cycle airtime including the m index copies.
  [[nodiscard]] double cycle_airtime() const noexcept {
    return data_ + static_cast<double>(m_) * index_airtime_;
  }

  /// Expected access time for a random wake-up and a popularity-weighted
  /// random push item:
  ///   probe (1) + wait to next index (cycle/2m) + index read + wait to the
  ///   item (cycle/2 on average) + item airtime.
  [[nodiscard]] double expected_access_time() const noexcept;

  /// Expected tuning (listening) time: initial probe + one index read +
  /// the item's airtime. Independent of m to first order.
  [[nodiscard]] double expected_tuning_time() const noexcept;

  /// Expected access time WITHOUT any index: half a (index-free) cycle plus
  /// the item airtime; tuning equals access (the client can never doze).
  [[nodiscard]] double unindexed_access_time() const noexcept;

  /// The access-optimal number of index copies, m* = sqrt(data / index),
  /// rounded to the nearest integer >= 1.
  [[nodiscard]] static std::size_t optimal_m(double data_airtime,
                                             double index_airtime);

  /// Monte-Carlo estimate of (access, tuning) over `probes` random client
  /// wake-ups with popularity-weighted item choice; validates the closed
  /// forms in the tests.
  struct Sampled {
    double access = 0.0;
    double tuning = 0.0;
  };
  [[nodiscard]] Sampled simulate(std::size_t probes,
                                 std::uint64_t seed) const;

 private:
  const catalog::Catalog* cat_;
  std::size_t cutoff_;
  double index_airtime_;
  std::size_t m_;
  double data_;
  double mean_item_airtime_;  // popularity-weighted over the push set
};

}  // namespace pushpull::airindex
