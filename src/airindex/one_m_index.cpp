#include "airindex/one_m_index.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/alias_table.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"

namespace pushpull::airindex {

OneMIndexModel::OneMIndexModel(const catalog::Catalog& cat,
                               std::size_t cutoff, double index_airtime,
                               std::size_t m)
    : cat_(&cat), cutoff_(cutoff), index_airtime_(index_airtime), m_(m) {
  if (cutoff == 0 || cutoff > cat.size()) {
    throw std::invalid_argument(
        "OneMIndexModel: cutoff must be in [1, catalog size]");
  }
  if (index_airtime <= 0.0) {
    throw std::invalid_argument("OneMIndexModel: index airtime must be > 0");
  }
  if (m == 0) {
    throw std::invalid_argument("OneMIndexModel: m must be >= 1");
  }
  data_ = cat.push_cycle_length(cutoff);
  const double mass = cat.push_probability(cutoff);
  mean_item_airtime_ =
      mass > 0.0 ? cat.push_service_demand(cutoff) / mass
                 : data_ / static_cast<double>(cutoff);
}

double OneMIndexModel::expected_access_time() const noexcept {
  const double cycle = cycle_airtime();
  const double segment = data_ / static_cast<double>(m_);
  const double period = segment + index_airtime_;

  // Exact popularity-weighted wait from the end of an index read to the
  // item's start. The naive cycle/2 is wrong for a flat rank-order
  // broadcast: popular items sit right after the cycle's start, so the
  // weighted wait is shorter. The client's index copy is uniform over the
  // m copies (the wake-up is uniform), hence the average over s.
  const double mass = cat_->push_probability(cutoff_);
  double item_wait = 0.0;
  double offset = 0.0;
  for (std::size_t i = 0; i < cutoff_; ++i) {
    const auto id = static_cast<catalog::ItemId>(i);
    auto seg = static_cast<std::size_t>(offset / segment);
    if (seg >= m_) seg = m_ - 1;
    const double start_in_cycle =
        offset + static_cast<double>(seg + 1) * index_airtime_;
    const double weight = mass > 0.0 ? cat_->probability(id) / mass
                                     : 1.0 / static_cast<double>(cutoff_);
    for (std::size_t s = 0; s < m_; ++s) {
      const double idx_done =
          static_cast<double>(s) * period + index_airtime_;
      double wait = std::fmod(start_in_cycle - idx_done, cycle);
      if (wait < 0.0) wait += cycle;
      item_wait += weight * wait / static_cast<double>(m_);
    }
    offset += cat_->length(id);
  }

  // probe + wait to the next index copy + index read + wait to the item +
  // the item's own airtime.
  return 1.0 + period / 2.0 + index_airtime_ + item_wait +
         mean_item_airtime_;
}

double OneMIndexModel::expected_tuning_time() const noexcept {
  return 1.0 + index_airtime_ + mean_item_airtime_;
}

double OneMIndexModel::unindexed_access_time() const noexcept {
  return data_ / 2.0 + mean_item_airtime_;
}

std::size_t OneMIndexModel::optimal_m(double data_airtime,
                                      double index_airtime) {
  if (data_airtime <= 0.0 || index_airtime <= 0.0) {
    throw std::invalid_argument("optimal_m: airtimes must be > 0");
  }
  const double m_star = std::sqrt(data_airtime / index_airtime);
  return m_star < 1.0 ? 1 : static_cast<std::size_t>(std::lround(m_star));
}

OneMIndexModel::Sampled OneMIndexModel::simulate(std::size_t probes,
                                                 std::uint64_t seed) const {
  if (probes == 0) {
    throw std::invalid_argument("OneMIndexModel: probes must be >= 1");
  }
  // Popularity-conditioned sampler over the push set, plus item start
  // offsets in data coordinates.
  std::vector<double> weights(cutoff_);
  std::vector<double> data_start(cutoff_);
  double offset = 0.0;
  for (std::size_t i = 0; i < cutoff_; ++i) {
    weights[i] = cat_->probability(static_cast<catalog::ItemId>(i));
    data_start[i] = offset;
    offset += cat_->length(static_cast<catalog::ItemId>(i));
  }
  rng::AliasTable push_sampler(weights);
  auto eng = rng::StreamFactory(seed).stream("airindex-probes");

  const double segment = data_ / static_cast<double>(m_);
  const double period = segment + index_airtime_;
  const double cycle = cycle_airtime();

  // Map a data coordinate into cycle coordinates: each data segment s is
  // preceded by one index copy, so x gains (s + 1) index airtimes. Items
  // straddling a segment boundary are approximated as contiguous from
  // their mapped start.
  const auto to_cycle = [&](double x) {
    auto s = static_cast<std::size_t>(x / segment);
    if (s >= m_) s = m_ - 1;  // boundary rounding
    return x + static_cast<double>(s + 1) * index_airtime_;
  };

  double access_sum = 0.0;
  double tuning_sum = 0.0;
  for (std::size_t p = 0; p < probes; ++p) {
    const double wake = rng::uniform(eng, 0.0, cycle);
    const double after_probe = wake + 1.0;
    // Doze until the next full index copy begins.
    const double idx_start =
        std::ceil(after_probe / period) * period;
    const double idx_done = idx_start + index_airtime_;

    const auto item = static_cast<std::size_t>(push_sampler.sample(eng));
    const double item_len = cat_->length(static_cast<catalog::ItemId>(item));
    const double start_in_cycle = to_cycle(data_start[item]);
    // Next occurrence of the item at or after the index read completes.
    const double k =
        std::ceil((idx_done - start_in_cycle) / cycle);
    const double item_start = start_in_cycle + std::max(0.0, k) * cycle;
    const double delivery = item_start + item_len;

    access_sum += delivery - wake;
    tuning_sum += 1.0 + index_airtime_ + item_len;
  }
  return Sampled{access_sum / static_cast<double>(probes),
                 tuning_sum / static_cast<double>(probes)};
}

}  // namespace pushpull::airindex
