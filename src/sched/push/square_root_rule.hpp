#pragma once

#include <cstddef>
#include <vector>

#include "sched/push/push_scheduler.hpp"

namespace pushpull::sched {

/// Square-Root-Rule broadcast (Hameed & Vaidya, WINET 1999).
///
/// Optimal variable-length broadcast spaces item i's replicas equally with
/// frequency ∝ sqrt(P_i / L_i). We use the authors' online decision rule:
/// at each slot broadcast the item maximizing G_i(t) = (t − R_i)²·P_i/L_i,
/// where R_i is the time item i was last broadcast (ties to the lower id).
/// This greedy converges to the equal-spacing square-root optimum without
/// materializing a cycle, and — unlike a naive "next due += spacing"
/// realization — keeps the square-root frequency ratios even though the
/// channel is fully subscribed.
class SquareRootRulePush final : public PushScheduler {
 public:
  SquareRootRulePush(const catalog::Catalog& cat, std::size_t cutoff);

  [[nodiscard]] catalog::ItemId next() override;
  void reset() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "square-root-rule";
  }

  /// Ideal replica spacing of item i, ∝ sqrt(L_i/P_i) (exposed for tests).
  [[nodiscard]] double spacing(catalog::ItemId id) const noexcept {
    return spacing_[id];
  }

 private:
  std::vector<double> spacing_;  // sqrt(L_i/P_i), indexed by item id < cutoff
  std::vector<double> weight_;   // P_i / L_i
  std::vector<double> last_;     // R_i: last broadcast instant
  std::vector<double> lengths_;
  double clock_ = 0.0;
};

}  // namespace pushpull::sched
