#pragma once

#include <cstddef>
#include <vector>

#include "sched/push/push_scheduler.hpp"

namespace pushpull::sched {

/// Broadcast Disks (Acharya, Alonso, Franklin, Zdonik — SIGMOD 1995).
///
/// The push set is split into `num_disks` popularity bands ("disks"); disk d
/// spins with relative frequency `num_disks - d`, so hot items recur more
/// often in the broadcast. The schedule is the classic chunked major cycle:
/// each disk is divided into max_chunks(d) = L / freq(d) chunks (L = lcm of
/// the frequencies) and minor cycle m broadcasts chunk m mod max_chunks(d)
/// of every disk. The full major cycle is materialized at construction and
/// then replayed.
class BroadcastDisksPush final : public PushScheduler {
 public:
  BroadcastDisksPush(const catalog::Catalog& cat, std::size_t cutoff,
                     std::size_t num_disks);

  [[nodiscard]] catalog::ItemId next() override;
  void reset() override { position_ = 0; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "broadcast-disks";
  }

  /// The materialized major cycle (exposed for tests).
  [[nodiscard]] const std::vector<catalog::ItemId>& major_cycle()
      const noexcept {
    return cycle_;
  }

 private:
  std::vector<catalog::ItemId> cycle_;
  std::size_t position_ = 0;
};

}  // namespace pushpull::sched
