#pragma once

#include <memory>
#include <string_view>

#include "catalog/catalog.hpp"

namespace pushpull::sched {

/// A push-side broadcast program over the push set [0, cutoff) of a
/// catalog: an infinite item sequence consumed one transmission at a time.
class PushScheduler {
 public:
  virtual ~PushScheduler() = default;

  /// Next item to broadcast. Precondition: the push set is non-empty.
  [[nodiscard]] virtual catalog::ItemId next() = 0;

  /// Restarts the program from its initial state.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

enum class PushPolicyKind {
  kFlat,            // round-robin, the paper's push schedule
  kBroadcastDisks,  // Acharya et al. 1995 multi-disk baseline
  kSquareRootRule,  // Hameed & Vaidya 1999 frequency-optimal baseline
};

[[nodiscard]] std::string_view to_string(PushPolicyKind kind) noexcept;

/// Creates a push scheduler over items [0, cutoff) of `cat`.
/// `cutoff` must be >= 1 (pure-pull systems simply never call the push
/// side; the factory still requires a non-empty program).
[[nodiscard]] std::unique_ptr<PushScheduler> make_push_scheduler(
    PushPolicyKind kind, const catalog::Catalog& cat, std::size_t cutoff);

}  // namespace pushpull::sched
