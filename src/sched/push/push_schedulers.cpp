#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sched/push/broadcast_disks.hpp"
#include "sched/push/flat.hpp"
#include "sched/push/square_root_rule.hpp"

namespace pushpull::sched {

// ---------------------------------------------------------------- FlatPush

FlatPush::FlatPush(std::size_t cutoff) : cutoff_(cutoff) {
  if (cutoff == 0) {
    throw std::invalid_argument("FlatPush: push set must be non-empty");
  }
}

catalog::ItemId FlatPush::next() {
  const auto item = static_cast<catalog::ItemId>(position_);
  position_ = (position_ + 1) % cutoff_;
  return item;
}

// ------------------------------------------------------ BroadcastDisksPush

BroadcastDisksPush::BroadcastDisksPush(const catalog::Catalog& cat,
                                       std::size_t cutoff,
                                       std::size_t num_disks) {
  if (cutoff == 0) {
    throw std::invalid_argument(
        "BroadcastDisksPush: push set must be non-empty");
  }
  if (num_disks == 0) {
    throw std::invalid_argument("BroadcastDisksPush: need at least one disk");
  }
  if (cutoff > cat.size()) {
    throw std::invalid_argument("BroadcastDisksPush: cutoff beyond catalog");
  }
  num_disks = std::min(num_disks, cutoff);

  // Items are already in popularity-rank order; disk d gets the d-th
  // contiguous band (near-equal sizes, hot bands first).
  std::vector<std::vector<catalog::ItemId>> disks(num_disks);
  for (std::size_t i = 0; i < cutoff; ++i) {
    const std::size_t d = i * num_disks / cutoff;
    disks[d].push_back(static_cast<catalog::ItemId>(i));
  }

  // Relative frequencies: hottest disk spins num_disks times per major
  // cycle, the coldest once.
  std::vector<std::size_t> freq(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) freq[d] = num_disks - d;
  std::size_t cycle_len = 1;
  for (std::size_t f : freq) cycle_len = std::lcm(cycle_len, f);

  // Chunking: disk d is split into cycle_len / freq[d] chunks; minor cycle m
  // carries chunk (m mod chunks_d) of every disk.
  std::vector<std::size_t> num_chunks(num_disks);
  for (std::size_t d = 0; d < num_disks; ++d) {
    num_chunks[d] = cycle_len / freq[d];
  }

  for (std::size_t minor = 0; minor < cycle_len; ++minor) {
    for (std::size_t d = 0; d < num_disks; ++d) {
      const auto& disk = disks[d];
      if (disk.empty()) continue;
      const std::size_t chunks = num_chunks[d];
      const std::size_t chunk = minor % chunks;
      // Chunk boundaries spread the disk's items as evenly as possible.
      const std::size_t begin = disk.size() * chunk / chunks;
      const std::size_t end = disk.size() * (chunk + 1) / chunks;
      for (std::size_t i = begin; i < end; ++i) cycle_.push_back(disk[i]);
    }
  }
}

catalog::ItemId BroadcastDisksPush::next() {
  const catalog::ItemId item = cycle_[position_];
  position_ = (position_ + 1) % cycle_.size();
  return item;
}

// ----------------------------------------------------- SquareRootRulePush

SquareRootRulePush::SquareRootRulePush(const catalog::Catalog& cat,
                                       std::size_t cutoff) {
  if (cutoff == 0) {
    throw std::invalid_argument(
        "SquareRootRulePush: push set must be non-empty");
  }
  if (cutoff > cat.size()) {
    throw std::invalid_argument("SquareRootRulePush: cutoff beyond catalog");
  }
  spacing_.resize(cutoff);
  weight_.resize(cutoff);
  lengths_.resize(cutoff);
  for (std::size_t i = 0; i < cutoff; ++i) {
    const auto& item = cat.item(static_cast<catalog::ItemId>(i));
    lengths_[i] = item.length;
    const double prob = std::max(item.access_prob, 1e-12);
    spacing_[i] = std::sqrt(item.length / prob);
    weight_[i] = prob / item.length;
  }
  reset();
}

void SquareRootRulePush::reset() {
  clock_ = 0.0;
  // Stagger the virtual last-broadcast instants so the start-up transient
  // does not synchronize items of equal weight.
  last_.resize(spacing_.size());
  for (std::size_t i = 0; i < last_.size(); ++i) {
    last_[i] = -spacing_[i];
  }
}

catalog::ItemId SquareRootRulePush::next() {
  std::size_t best = 0;
  double best_gain = -1.0;
  for (std::size_t i = 0; i < weight_.size(); ++i) {
    const double idle = clock_ - last_[i];
    const double gain = idle * idle * weight_[i];
    if (gain > best_gain) {
      best = i;
      best_gain = gain;
    }
  }
  last_[best] = clock_;
  clock_ += lengths_[best];
  return static_cast<catalog::ItemId>(best);
}

// ------------------------------------------------------------------ factory

std::string_view to_string(PushPolicyKind kind) noexcept {
  switch (kind) {
    case PushPolicyKind::kFlat:
      return "flat";
    case PushPolicyKind::kBroadcastDisks:
      return "broadcast-disks";
    case PushPolicyKind::kSquareRootRule:
      return "square-root-rule";
  }
  return "unknown";
}

std::unique_ptr<PushScheduler> make_push_scheduler(PushPolicyKind kind,
                                                   const catalog::Catalog& cat,
                                                   std::size_t cutoff) {
  switch (kind) {
    case PushPolicyKind::kFlat:
      if (cutoff > cat.size()) {
        throw std::invalid_argument("make_push_scheduler: cutoff beyond catalog");
      }
      return std::make_unique<FlatPush>(cutoff);
    case PushPolicyKind::kBroadcastDisks:
      return std::make_unique<BroadcastDisksPush>(cat, cutoff,
                                                  std::min<std::size_t>(3, cutoff));
    case PushPolicyKind::kSquareRootRule:
      return std::make_unique<SquareRootRulePush>(cat, cutoff);
  }
  throw std::invalid_argument("make_push_scheduler: unknown kind");
}

}  // namespace pushpull::sched
