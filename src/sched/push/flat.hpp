#pragma once

#include <cstddef>

#include "sched/push/push_scheduler.hpp"

namespace pushpull::sched {

/// Flat (round-robin) broadcast: items 0..cutoff-1 in rank order, cyclically.
/// This is the paper's push schedule; its expected access delay for a client
/// tuning in at a random instant is half the cycle airtime.
class FlatPush final : public PushScheduler {
 public:
  explicit FlatPush(std::size_t cutoff);

  [[nodiscard]] catalog::ItemId next() override;
  void reset() override { position_ = 0; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "flat";
  }

 private:
  std::size_t cutoff_;
  std::size_t position_ = 0;
};

}  // namespace pushpull::sched
