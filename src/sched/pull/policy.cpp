#include "sched/pull/policy.hpp"

#include <stdexcept>

#include "sched/pull/policies.hpp"

namespace pushpull::sched {

std::string_view to_string(PullPolicyKind kind) noexcept {
  switch (kind) {
    case PullPolicyKind::kFcfs:
      return "fcfs";
    case PullPolicyKind::kMrf:
      return "mrf";
    case PullPolicyKind::kStretch:
      return "stretch";
    case PullPolicyKind::kPriority:
      return "priority";
    case PullPolicyKind::kRxw:
      return "rxw";
    case PullPolicyKind::kLwf:
      return "lwf";
    case PullPolicyKind::kImportance:
      return "importance";
    case PullPolicyKind::kImportanceQueueAware:
      return "importance-q";
  }
  return "unknown";
}

std::unique_ptr<PullPolicy> make_pull_policy(PullPolicyKind kind,
                                             double alpha) {
  switch (kind) {
    case PullPolicyKind::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case PullPolicyKind::kMrf:
      return std::make_unique<MrfPolicy>();
    case PullPolicyKind::kStretch:
      return std::make_unique<StretchPolicy>();
    case PullPolicyKind::kPriority:
      return std::make_unique<PriorityPolicy>();
    case PullPolicyKind::kRxw:
      return std::make_unique<RxwPolicy>();
    case PullPolicyKind::kLwf:
      return std::make_unique<LwfPolicy>();
    case PullPolicyKind::kImportance:
      return std::make_unique<ImportancePolicy>(alpha);
    case PullPolicyKind::kImportanceQueueAware:
      return std::make_unique<ImportanceQueueAwarePolicy>(alpha);
  }
  throw std::invalid_argument("make_pull_policy: unknown kind");
}

}  // namespace pushpull::sched
