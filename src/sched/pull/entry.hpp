#pragma once

#include <vector>

#include "catalog/item.hpp"
#include "des/event.hpp"
#include "workload/request.hpp"

namespace pushpull::sched {

/// Aggregated pull-queue state for one item: every pending request for the
/// item plus the running aggregates the selection policies score on.
///
/// The paper's quantities map as: R_i = num_requests(), L_i = length,
/// Q_i = total_priority (Σ q_j over requesting clients), and the stretch
/// S_i = R_i / L_i² = stretch().
struct PullEntry {
  catalog::ItemId item = 0;
  double length = 1.0;
  double popularity = 0.0;  // catalog P_i, used by the Eq. 6 variant
  std::vector<workload::Request> pending;
  double total_priority = 0.0;
  des::SimTime first_arrival = 0.0;
  /// Σ arrival times of pending requests; lets LWF compute the total
  /// accumulated waiting Σ(now − arrival_j) in O(1).
  double total_arrival = 0.0;

  [[nodiscard]] double num_requests() const noexcept {
    return static_cast<double>(pending.size());
  }

  /// Max-request min-service-time stretch: S_i = R_i / L_i².
  [[nodiscard]] double stretch() const noexcept {
    return num_requests() / (length * length);
  }

  /// Total accumulated waiting time of all pending requests at `now`.
  [[nodiscard]] double total_wait(des::SimTime now) const noexcept {
    return num_requests() * now - total_arrival;
  }
};

/// Ambient values a policy may consult when scoring an entry.
struct PullContext {
  des::SimTime now = 0.0;
  /// Running estimate of E[L_pull], the expected pull-queue length; the
  /// Eq. 6 generalization weighs entries by E[L_pull]·p_i.
  double expected_queue_len = 1.0;
};

}  // namespace pushpull::sched
