#pragma once

#include <memory>
#include <string>
#include <utility>

#include "metrics/float_compare.hpp"
#include "sched/pull/policy.hpp"

namespace pushpull::sched {

/// Aging decorator: wraps any pull policy and adds a starvation guard,
///   score'(i) = score(i) + rate · (now − first_arrival_i).
///
/// The paper itself notes that priority-weighted selection "might suffer
/// from un-fairness to the lower priority clients" — an entry that keeps
/// losing to premium items can wait unboundedly. Linear aging bounds that
/// wait: once an entry is old enough its aged score exceeds any newcomer's,
/// so every item is eventually served regardless of class. `rate` trades
/// priority fidelity (0 = wrapped policy unchanged) against the starvation
/// bound (larger = closer to FCFS).
class AgingPolicy final : public PullPolicy {
 public:
  AgingPolicy(std::unique_ptr<PullPolicy> inner, double rate)
      : inner_(std::move(inner)), rate_(rate) {
    if (!inner_) {
      throw std::invalid_argument("AgingPolicy: inner policy required");
    }
    if (rate < 0.0) {
      throw std::invalid_argument("AgingPolicy: rate must be >= 0");
    }
    name_ = "aging(" + std::string(inner_->name()) + ")";
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] const PullPolicy& inner() const noexcept { return *inner_; }

  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext& ctx) const override {
    return inner_->score(entry, ctx) +
           rate_ * (ctx.now - entry.first_arrival);
  }

  /// Aging reads ctx.now whenever rate > 0; at rate 0 the decorator is
  /// transparent and inherits the inner policy's invariance.
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return metrics::exactly_equal(rate_, 0.0) && inner_->ctx_invariant();
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

 private:
  std::unique_ptr<PullPolicy> inner_;
  double rate_;
  std::string name_;
};

/// Convenience: the paper's importance policy with a starvation guard.
[[nodiscard]] inline std::unique_ptr<PullPolicy> make_aged_importance(
    double alpha, double aging_rate) {
  return std::make_unique<AgingPolicy>(
      make_pull_policy(PullPolicyKind::kImportance, alpha), aging_rate);
}

}  // namespace pushpull::sched
