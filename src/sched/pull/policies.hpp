#pragma once

#include <stdexcept>

#include "sched/pull/policy.hpp"

namespace pushpull::sched {

/// First-come-first-served: the item whose oldest request has waited
/// longest. The classic on-demand baseline; ignores batching entirely.
class FcfsPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext&) const override {
    return -entry.first_arrival;
  }
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fcfs";
  }
};

/// Most-requests-first: maximizes requests satisfied per transmission but
/// starves unpopular items and ignores lengths.
class MrfPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext&) const override {
    return entry.num_requests();
  }
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mrf";
  }
};

/// Stretch-optimal (max-request min-service-time): R_i / L_i². The α = 1
/// extreme of the paper's importance factor — popularity-aware and
/// length-aware, but priority-blind.
class StretchPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext&) const override {
    return entry.stretch();
  }
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "stretch";
  }
};

/// Pure priority: maximum summed client priority Q_i. The α = 0 extreme —
/// serves premium clients first but is unfair and ignores batching
/// efficiency.
class PriorityPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext&) const override {
    return entry.total_priority;
  }
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "priority";
  }
};

/// RxW (Aksoy & Franklin 1999): pending requests × longest wait. A
/// popularity/fairness compromise used as an external baseline; like
/// stretch, it is priority-blind.
class RxwPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext& ctx) const override {
    return entry.num_requests() * (ctx.now - entry.first_arrival);
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rxw";
  }
};

/// Longest-wait-first (LWF): total accumulated waiting time of the item's
/// pending requests. A classic on-demand broadcast heuristic that balances
/// popularity against age without a tunable knob; priority-blind.
class LwfPolicy final : public PullPolicy {
 public:
  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext& ctx) const override {
    return entry.total_wait(ctx.now);
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lwf";
  }
};

/// The paper's importance factor, Eq. 1: γ_i = α·S_i + (1−α)·Q_i.
class ImportancePolicy final : public PullPolicy {
 public:
  explicit ImportancePolicy(double alpha) : alpha_(alpha) {
    if (alpha < 0.0 || alpha > 1.0) {
      throw std::invalid_argument("ImportancePolicy: alpha must be in [0,1]");
    }
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext&) const override {
    return alpha_ * entry.stretch() + (1.0 - alpha_) * entry.total_priority;
  }
  [[nodiscard]] bool ctx_invariant() const noexcept override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "importance";
  }

 private:
  double alpha_;
};

/// The paper's Eq. 6 generalization: weighs both terms by the expected
/// number of copies of the item in the pull queue, E[L_pull]·p_i:
///   ϱ_i = α·E[L]p_i/L_i² + (1−α)·E[L]p_i·Q_i.
/// Reduces to Eq. 1 when E[L_pull]·p_i = 1.
class ImportanceQueueAwarePolicy final : public PullPolicy {
 public:
  explicit ImportanceQueueAwarePolicy(double alpha) : alpha_(alpha) {
    if (alpha < 0.0 || alpha > 1.0) {
      throw std::invalid_argument(
          "ImportanceQueueAwarePolicy: alpha must be in [0,1]");
    }
  }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  [[nodiscard]] double score(const PullEntry& entry,
                             const PullContext& ctx) const override {
    const double expected_copies = ctx.expected_queue_len * entry.popularity;
    return alpha_ * expected_copies / (entry.length * entry.length) +
           (1.0 - alpha_) * expected_copies * entry.total_priority;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "importance-q";
  }

 private:
  double alpha_;
};

}  // namespace pushpull::sched
