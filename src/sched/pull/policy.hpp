#pragma once

#include <memory>
#include <string_view>

#include "sched/pull/entry.hpp"

namespace pushpull::sched {

/// A pull-queue selection policy: scores entries, highest score transmits
/// next. Stateless by design — all request state lives in the PullEntry —
/// so one policy instance can serve any number of concurrent simulations.
class PullPolicy {
 public:
  virtual ~PullPolicy() = default;

  /// Higher is more urgent. Ties are broken by the queue (lowest item id)
  /// so runs are deterministic.
  [[nodiscard]] virtual double score(const PullEntry& entry,
                                     const PullContext& ctx) const = 0;

  /// True when score() reads only the entry — never PullContext — so a
  /// cached score stays valid until the entry itself mutates. The indexed
  /// pull queue uses this to rescore only dirty entries per extraction;
  /// context-dependent policies (RxW, LWF, queue-aware importance, aging)
  /// must return false and are rescored in full. Defaults to false: a
  /// policy that forgets to override only loses the caching speedup, never
  /// correctness.
  [[nodiscard]] virtual bool ctx_invariant() const noexcept { return false; }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// The selection policies available to the hybrid server.
enum class PullPolicyKind {
  kFcfs,        // earliest first request wins
  kMrf,         // most pending requests first
  kStretch,     // stretch-optimal: max R_i / L_i²  (paper's α = 1 extreme)
  kPriority,    // max summed client priority Q_i   (paper's α = 0 extreme)
  kRxw,         // Aksoy–Franklin RxW baseline: R_i × waiting time
  kLwf,         // longest-total-wait-first: Σ_j (now − arrival_j)
  kImportance,  // the paper's Eq. 1: α·S_i + (1−α)·Q_i
  kImportanceQueueAware,  // the paper's Eq. 6 generalization
};

[[nodiscard]] std::string_view to_string(PullPolicyKind kind) noexcept;

/// Creates a policy. `alpha` is only consulted by the importance policies.
[[nodiscard]] std::unique_ptr<PullPolicy> make_pull_policy(
    PullPolicyKind kind, double alpha = 0.5);

}  // namespace pushpull::sched
