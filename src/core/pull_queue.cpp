#include "core/pull_queue.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace pushpull::core {

void PullQueue::add(const workload::Request& request, double priority,
                    double length, double popularity) {
  auto [it, inserted] = slot_of_.try_emplace(request.item, entries_.size());
  if (inserted) {
    sched::PullEntry entry;
    entry.item = request.item;
    entry.length = length;
    entry.popularity = popularity;
    entry.first_arrival = request.arrival;
    entries_.push_back(std::move(entry));
    scores_.push_back(0.0);
    is_dirty_.push_back(0);
    if (tree_cap_ != 0 && entries_.size() > tree_cap_) {
      rebuild_tree();
    } else {
      tree_set_leaf(entries_.size() - 1);
    }
  }
  auto& entry = entries_[it->second];
  entry.pending.push_back(request);
  entry.total_priority += priority;
  entry.total_arrival += request.arrival;
  mark_dirty(it->second);
  ++total_requests_;
  if (counters_ != nullptr) {
    ++counters_->enters;
    if (total_requests_ > counters_->peak) counters_->peak = total_requests_;
  }
}

const sched::PullEntry* PullQueue::find(catalog::ItemId item) const {
  const auto it = slot_of_.find(item);
  return it == slot_of_.end() ? nullptr : &entries_[it->second];
}

std::size_t PullQueue::select_by_scan(const sched::PullPolicy& policy,
                                      const sched::PullContext& ctx) const {
  std::size_t best = 0;
  double best_score = policy.score(entries_[0], ctx);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const double s = policy.score(entries_[i], ctx);
    if (s > best_score ||
        (s == best_score && entries_[i].item < entries_[best].item)) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

std::optional<sched::PullEntry> PullQueue::extract_best(
    const sched::PullPolicy& policy, const sched::PullContext& ctx) {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  if (mode_ == SelectMode::kScan || !policy.ctx_invariant()) {
    best = select_by_scan(policy, ctx);
  } else {
    const std::size_t n = entries_.size();
    if (&policy != last_policy_) {
      // New (or first) policy: every cached score is stale.
      last_policy_ = &policy;
      has_nan_score_ = false;
      dirty_.clear();
      dirty_.reserve(n);
      for (std::size_t slot = 0; slot < n; ++slot) {
        is_dirty_[slot] = 1;
        dirty_.push_back(static_cast<Slot>(slot));
      }
    }
    if (tree_cap_ < n) rebuild_tree();
    while (!dirty_.empty()) {
      const std::size_t slot = dirty_.back();
      dirty_.pop_back();
      if (slot >= n || is_dirty_[slot] == 0) continue;  // stale stack entry
      is_dirty_[slot] = 0;
      const double s = policy.score(entries_[slot], ctx);
      if (std::isnan(s)) has_nan_score_ = true;
      scores_[slot] = s;
      tree_set_leaf(slot);
    }
    // NaN scores break the fold/tree equivalence (NaN compares false both
    // ways); defer to the reference scan whenever one is cached.
    best = has_nan_score_ ? select_by_scan(policy, ctx) : tree_[1];
  }
  return extract(entries_[best].item);
}

std::optional<sched::PullEntry> PullQueue::extract(catalog::ItemId item) {
  const auto it = slot_of_.find(item);
  if (it == slot_of_.end()) return std::nullopt;
  const std::size_t slot = it->second;
  const std::size_t back = entries_.size() - 1;
  sched::PullEntry out = std::move(entries_[slot]);
  slot_of_.erase(it);
  if (slot != back) {
    entries_[slot] = std::move(entries_.back());
    // The moved entry keeps its cached score; only its slot changed.
    scores_[slot] = scores_[back];
    if (is_dirty_[back] != 0 && is_dirty_[slot] == 0) {
      is_dirty_[slot] = 1;
      dirty_.push_back(static_cast<Slot>(slot));
    }
    slot_of_[entries_[slot].item] = slot;
  }
  entries_.pop_back();
  scores_.pop_back();
  is_dirty_.pop_back();
  tree_set_leaf(back);                   // vacated leaf
  if (slot != back) tree_set_leaf(slot); // moved entry's new path
  if (total_requests_ < out.pending.size()) {
    throw std::logic_error(
        "PullQueue: extracting item " + std::to_string(item) + " with " +
        std::to_string(out.pending.size()) +
        " pending requests but only " + std::to_string(total_requests_) +
        " tracked in total; add/remove accounting is corrupt");
  }
  total_requests_ -= out.pending.size();
  if (counters_ != nullptr && !out.pending.empty()) {
    counters_->leaves += out.pending.size();
    ++counters_->extracts;
  }
  return out;
}

bool PullQueue::remove_request(catalog::ItemId item,
                               workload::RequestId request, double priority) {
  const auto it = slot_of_.find(item);
  if (it == slot_of_.end()) return false;
  auto& entry = entries_[it->second];
  auto pending_it = entry.pending.begin();
  for (; pending_it != entry.pending.end(); ++pending_it) {
    if (pending_it->id == request) break;
  }
  if (pending_it == entry.pending.end()) return false;
  entry.total_arrival -= pending_it->arrival;
  entry.pending.erase(pending_it);
  --total_requests_;
  if (counters_ != nullptr) ++counters_->leaves;
  if (entry.pending.empty()) {
    // The emptied entry leaves the queue; its batch size is already zero,
    // so extract() adjusts no further counts.
    (void)extract(item);
    return true;
  }
  entry.total_priority -= priority;
  entry.first_arrival = entry.pending.front().arrival;
  for (const auto& r : entry.pending) {
    if (r.arrival < entry.first_arrival) entry.first_arrival = r.arrival;
  }
  mark_dirty(it->second);
  return true;
}

void PullQueue::clear() {
  // A mid-run wipe (cold-recovery crash) discards every queued request, so
  // the enter/leave conservation tally still balances at run end.
  if (counters_ != nullptr) counters_->leaves += total_requests_;
  entries_.clear();
  slot_of_.clear();
  total_requests_ = 0;
  scores_.clear();
  is_dirty_.clear();
  dirty_.clear();
  tree_.clear();
  tree_cap_ = 0;
  last_policy_ = nullptr;
  has_nan_score_ = false;
}

void PullQueue::mark_dirty(std::size_t slot) {
  if (is_dirty_[slot] == 0) {
    is_dirty_[slot] = 1;
    dirty_.push_back(static_cast<Slot>(slot));
  }
}

PullQueue::Slot PullQueue::tree_winner(Slot l, Slot r) const noexcept {
  if (l == kNoSlot) return r;
  if (r == kNoSlot) return l;
  // Exactly the scan's fold condition with l as the running best: the
  // later slot wins only when strictly better or tied with a lower item.
  const double sl = scores_[l];
  const double sr = scores_[r];
  if (sr > sl || (sr == sl && entries_[r].item < entries_[l].item)) return r;
  return l;
}

void PullQueue::tree_set_leaf(std::size_t slot) {
  if (tree_cap_ == 0 || slot >= tree_cap_) return;
  std::size_t i = tree_cap_ + slot;
  tree_[i] = slot < entries_.size() ? static_cast<Slot>(slot) : kNoSlot;
  for (i >>= 1; i >= 1; i >>= 1) {
    tree_[i] = tree_winner(tree_[2 * i], tree_[2 * i + 1]);
  }
}

void PullQueue::rebuild_tree() {
  std::size_t cap = 16;
  while (cap < entries_.size()) cap *= 2;
  tree_cap_ = cap;
  tree_.assign(2 * cap, kNoSlot);
  for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
    tree_[cap + slot] = static_cast<Slot>(slot);
  }
  for (std::size_t i = cap - 1; i >= 1; --i) {
    tree_[i] = tree_winner(tree_[2 * i], tree_[2 * i + 1]);
  }
}

}  // namespace pushpull::core
