#include "core/pull_queue.hpp"

#include <stdexcept>
#include <string>

namespace pushpull::core {

void PullQueue::add(const workload::Request& request, double priority,
                    double length, double popularity) {
  auto [it, inserted] = slot_of_.try_emplace(request.item, entries_.size());
  if (inserted) {
    sched::PullEntry entry;
    entry.item = request.item;
    entry.length = length;
    entry.popularity = popularity;
    entry.first_arrival = request.arrival;
    entries_.push_back(std::move(entry));
  }
  auto& entry = entries_[it->second];
  entry.pending.push_back(request);
  entry.total_priority += priority;
  entry.total_arrival += request.arrival;
  ++total_requests_;
  if (counters_ != nullptr) {
    ++counters_->enters;
    if (total_requests_ > counters_->peak) counters_->peak = total_requests_;
  }
}

const sched::PullEntry* PullQueue::find(catalog::ItemId item) const {
  const auto it = slot_of_.find(item);
  return it == slot_of_.end() ? nullptr : &entries_[it->second];
}

std::optional<sched::PullEntry> PullQueue::extract_best(
    const sched::PullPolicy& policy, const sched::PullContext& ctx) {
  if (entries_.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_score = policy.score(entries_[0], ctx);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const double s = policy.score(entries_[i], ctx);
    if (s > best_score ||
        (s == best_score && entries_[i].item < entries_[best].item)) {
      best = i;
      best_score = s;
    }
  }
  return extract(entries_[best].item);
}

std::optional<sched::PullEntry> PullQueue::extract(catalog::ItemId item) {
  const auto it = slot_of_.find(item);
  if (it == slot_of_.end()) return std::nullopt;
  const std::size_t slot = it->second;
  sched::PullEntry out = std::move(entries_[slot]);
  slot_of_.erase(it);
  if (slot + 1 != entries_.size()) {
    entries_[slot] = std::move(entries_.back());
    slot_of_[entries_[slot].item] = slot;
  }
  entries_.pop_back();
  if (total_requests_ < out.pending.size()) {
    throw std::logic_error(
        "PullQueue: extracting item " + std::to_string(item) + " with " +
        std::to_string(out.pending.size()) +
        " pending requests but only " + std::to_string(total_requests_) +
        " tracked in total; add/remove accounting is corrupt");
  }
  total_requests_ -= out.pending.size();
  if (counters_ != nullptr && !out.pending.empty()) {
    counters_->leaves += out.pending.size();
    ++counters_->extracts;
  }
  return out;
}

bool PullQueue::remove_request(catalog::ItemId item,
                               workload::RequestId request, double priority) {
  const auto it = slot_of_.find(item);
  if (it == slot_of_.end()) return false;
  auto& entry = entries_[it->second];
  auto pending_it = entry.pending.begin();
  for (; pending_it != entry.pending.end(); ++pending_it) {
    if (pending_it->id == request) break;
  }
  if (pending_it == entry.pending.end()) return false;
  entry.total_arrival -= pending_it->arrival;
  entry.pending.erase(pending_it);
  --total_requests_;
  if (counters_ != nullptr) ++counters_->leaves;
  if (entry.pending.empty()) {
    // The emptied entry leaves the queue; its batch size is already zero,
    // so extract() adjusts no further counts.
    (void)extract(item);
    return true;
  }
  entry.total_priority -= priority;
  entry.first_arrival = entry.pending.front().arrival;
  for (const auto& r : entry.pending) {
    if (r.arrival < entry.first_arrival) entry.first_arrival = r.arrival;
  }
  return true;
}

void PullQueue::clear() {
  // A mid-run wipe (cold-recovery crash) discards every queued request, so
  // the enter/leave conservation tally still balances at run end.
  if (counters_ != nullptr) counters_->leaves += total_requests_;
  entries_.clear();
  slot_of_.clear();
  total_requests_ = 0;
}

}  // namespace pushpull::core
