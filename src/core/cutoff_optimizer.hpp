#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/trace.hpp"

namespace pushpull::core {

/// One evaluated cutoff point.
struct CutoffSample {
  std::size_t cutoff = 0;
  double cost = 0.0;
};

/// Result of a cutoff scan: the whole curve plus its minimizer.
struct CutoffScan {
  std::vector<CutoffSample> curve;
  std::size_t best_cutoff = 0;
  double best_cost = 0.0;
};

/// Evaluates `cost` over cutoffs {k_min, k_min+step, ..., <= k_max} and
/// returns the curve and its minimizer (first minimum on ties).
///
/// This is the paper's periodic re-optimization step ("the algorithm is
/// executed for different cutoff-points and obtains the optimal cutoff-point
/// which minimizes the overall access time"): the cost functional is
/// pluggable — mean access time, total prioritized cost, or the analytical
/// Eq. 19 estimate — so the same scan drives Figs. 5–7.
[[nodiscard]] CutoffScan scan_cutoffs(
    std::size_t k_min, std::size_t k_max, std::size_t step,
    const std::function<double(std::size_t)>& cost);

/// Same scan, but each evaluated point emits a cutoff-category "sample"
/// trace event (a=k, v=cost) and the minimizer a final "best" event. The
/// scan itself is byte-for-byte the untraced overload. Sim time is 0: the
/// optimizer runs between simulations, outside any virtual clock.
[[nodiscard]] CutoffScan scan_cutoffs(
    std::size_t k_min, std::size_t k_max, std::size_t step,
    const std::function<double(std::size_t)>& cost, const obs::Tracer& tracer);

}  // namespace pushpull::core
