#include "core/bandwidth_manager.hpp"

#include <stdexcept>
#include <string>

namespace pushpull::core {

BandwidthManager::BandwidthManager(double total,
                                   std::vector<double> fractions) {
  if (total <= 0.0) return;  // unconstrained
  if (fractions.empty()) {
    throw std::invalid_argument("BandwidthManager: no class fractions");
  }
  double sum = 0.0;
  for (double f : fractions) {
    if (f <= 0.0) {
      throw std::invalid_argument(
          "BandwidthManager: fractions must be positive");
    }
    sum += f;
  }
  capacity_.resize(fractions.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    capacity_[i] = total * fractions[i] / sum;
  }
  available_ = capacity_;
}

BandwidthManager::BandwidthManager(double total, std::size_t num_classes)
    : BandwidthManager(total, std::vector<double>(num_classes, 1.0)) {}

bool BandwidthManager::try_acquire(workload::ClassId cls, double demand) {
  if (unconstrained()) return true;
  if (cls >= capacity_.size()) {
    throw std::logic_error("BandwidthManager: class " + std::to_string(cls) +
                           " out of range (" +
                           std::to_string(capacity_.size()) + " classes)");
  }
  if (demand > available_[cls]) {
    ++rejected_;
    return false;
  }
  available_[cls] -= demand;
  ++admitted_;
  return true;
}

void BandwidthManager::release(workload::ClassId cls, double demand) {
  if (unconstrained()) return;
  if (cls >= capacity_.size()) {
    throw std::logic_error("BandwidthManager: class " + std::to_string(cls) +
                           " out of range (" +
                           std::to_string(capacity_.size()) + " classes)");
  }
  available_[cls] += demand;
  if (available_[cls] > capacity_[cls] + 1e-9) {
    throw std::logic_error(
        "BandwidthManager: release exceeds class " + std::to_string(cls) +
        " capacity (available " + std::to_string(available_[cls]) +
        " > capacity " + std::to_string(capacity_[cls]) + ")");
  }
}

}  // namespace pushpull::core
