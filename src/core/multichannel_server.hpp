#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/pull_queue.hpp"
#include "core/result.hpp"
#include "des/simulator.hpp"
#include "metrics/class_stats.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace pushpull::core {

/// Configuration of the multi-channel hybrid server.
struct MultiChannelConfig {
  std::size_t cutoff = 0;
  double alpha = 0.5;
  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;
  sched::PushPolicyKind push_policy = sched::PushPolicyKind::kFlat;
  /// Number of on-demand channels serving pull entries concurrently.
  std::size_t num_pull_channels = 1;
};

/// Outcome of a multi-channel run: SimResult counters plus per-channel
/// utilization (busy airtime / total time).
struct MultiChannelResult {
  std::vector<metrics::ClassStats> per_class;
  des::SimTime end_time = 0.0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  double push_channel_utilization = 0.0;
  std::vector<double> pull_channel_utilization;

  [[nodiscard]] metrics::ClassStats overall() const {
    metrics::ClassStats total;
    for (const auto& s : per_class) {
      total.merge_counters(s);
    }
    return total;
  }
  [[nodiscard]] double mean_wait(workload::ClassId cls) const {
    return per_class[cls].wait.mean();
  }
  [[nodiscard]] double total_prioritized_cost(
      const workload::ClientPopulation& pop) const {
    double total = 0.0;
    for (workload::ClassId c = 0; c < per_class.size(); ++c) {
      total += pop.priority(c) * per_class[c].wait.mean();
    }
    return total;
  }
};

/// Hybrid scheduling on a multi-channel downlink: one dedicated channel
/// carries the cyclic push broadcast back-to-back, and `num_pull_channels`
/// on-demand channels each transmit the most important pull entry the
/// moment they free up — no push/pull alternation, because the channels no
/// longer contend.
///
/// This is the natural "more spectrum" extension of the paper's
/// single-channel model: comparing it against HybridServer at the same
/// cutoff isolates how much delay the alternation constraint itself costs
/// (see bench/ext_multichannel).
class MultiChannelServer {
 public:
  MultiChannelServer(const catalog::Catalog& cat,
                     const workload::ClientPopulation& pop,
                     MultiChannelConfig config);

  [[nodiscard]] MultiChannelResult run(const workload::Trace& trace);

  [[nodiscard]] const MultiChannelConfig& config() const noexcept {
    return config_;
  }

 private:
  void on_arrival(const workload::Request& request);
  void push_loop();
  void dispatch_pull(std::size_t channel);
  void try_dispatch_pulls();
  void deliver(const workload::Request& request, bool via_push);
  void settle_one();

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  MultiChannelConfig config_;

  des::Simulator sim_;
  PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;

  std::vector<std::vector<workload::Request>> push_waiters_;
  std::unique_ptr<metrics::ClassCollector> collector_;

  std::vector<bool> channel_busy_;
  std::vector<double> channel_airtime_;
  double push_airtime_ = 0.0;

  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  double queue_len_area_ = 0.0;
  des::SimTime queue_len_last_t_ = 0.0;
};

}  // namespace pushpull::core
