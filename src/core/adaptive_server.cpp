#include "core/adaptive_server.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/cutoff_optimizer.hpp"
#include "queueing/access_time.hpp"

namespace pushpull::core {

AdaptiveHybridServer::AdaptiveHybridServer(
    const catalog::Catalog& cat, const workload::ClientPopulation& pop,
    AdaptiveConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      estimator_(cat.size(), config_.estimator_half_life),
      is_push_(cat.size(), false),
      push_waiters_(cat.size()) {
  if (config_.initial_cutoff > cat.size()) {
    throw std::invalid_argument(
        "AdaptiveHybridServer: cutoff beyond catalog size");
  }
  if (config_.reoptimize_interval <= 0.0) {
    throw std::invalid_argument(
        "AdaptiveHybridServer: re-optimization interval must be > 0");
  }
  if (config_.scan_step == 0) {
    throw std::invalid_argument("AdaptiveHybridServer: scan step must be > 0");
  }
  pull_policy_ = sched::make_pull_policy(config_.pull_policy, config_.alpha);
}

void AdaptiveHybridServer::set_push_set(
    const std::vector<catalog::ItemId>& ranking, std::size_t cutoff) {
  std::fill(is_push_.begin(), is_push_.end(), false);
  push_list_.assign(ranking.begin(),
                    ranking.begin() + static_cast<std::ptrdiff_t>(cutoff));
  for (catalog::ItemId id : push_list_) is_push_[id] = true;
  push_pos_ = 0;

  // Migrate pending work across the new boundary.
  for (catalog::ItemId id : push_list_) {
    // Newly pushed: queued pull requests now just wait for the broadcast.
    if (auto entry = pull_queue_.extract(id)) {
      auto& waiters = push_waiters_[id];
      waiters.insert(waiters.end(), entry->pending.begin(),
                     entry->pending.end());
    }
  }
  for (catalog::ItemId id = 0; id < catalog_->size(); ++id) {
    if (is_push_[id] || push_waiters_[id].empty()) continue;
    // Newly pulled: broadcast waiters become explicit pull requests.
    for (const auto& request : push_waiters_[id]) {
      pull_queue_.add(request, population_->priority(request.cls),
                      catalog_->length(id), catalog_->probability(id));
    }
    push_waiters_[id].clear();
  }
  cutoff_history_.emplace_back(sim_.now(), cutoff);
}

void AdaptiveHybridServer::reoptimize() {
  if (settled_ == to_settle_) return;  // nothing left to schedule for
  schedule_reoptimization();
  if (arrived_ == 0 || sim_.now() <= 0.0) return;

  // Assemble the estimated catalog: estimated popularity in rank order with
  // the true item lengths, plus the measured aggregate arrival rate.
  const std::vector<catalog::ItemId> ranking = estimator_.ranking();
  const std::vector<double> probs = estimator_.probabilities();
  std::vector<double> lengths(ranking.size());
  std::vector<double> weights(ranking.size());
  for (std::size_t r = 0; r < ranking.size(); ++r) {
    lengths[r] = catalog_->length(ranking[r]);
    weights[r] = probs[ranking[r]];
  }
  double measured_rate = static_cast<double>(arrived_) / sim_.now();
  if (measured_rate <= 0.0) return;

  const catalog::Catalog estimated(std::move(lengths), std::move(weights));
  const queueing::HybridAccessModel model(estimated, *population_,
                                          measured_rate);
  const CutoffScan scan = scan_cutoffs(
      0, estimated.size(), config_.scan_step,
      [&](std::size_t k) { return model.prioritized_cost(k, config_.alpha); });

  ++reoptimizations_;
  set_push_set(ranking, scan.best_cutoff);
  wake_if_idle();
}

void AdaptiveHybridServer::schedule_reoptimization() {
  sim_.schedule_in(config_.reoptimize_interval, [this]() { reoptimize(); });
}

void AdaptiveHybridServer::settle_one() {
  ++settled_;
  if (settled_ == to_settle_) sim_.request_stop();
}

void AdaptiveHybridServer::deliver(const workload::Request& request,
                                   bool via_push) {
  collector_->record_served(request.cls, sim_.now() - request.arrival,
                            via_push, sim_.now());
  settle_one();
}

void AdaptiveHybridServer::wake_if_idle() {
  if (server_busy_ || settled_ == to_settle_) return;
  if (push_list_.empty() && pull_queue_.empty()) return;
  server_busy_ = true;
  serve_next(/*just_did_push=*/true);
}

void AdaptiveHybridServer::on_arrival(const workload::Request& request) {
  collector_->record_arrival(request.cls);
  ++arrived_;
  estimator_.observe(request.item, request.arrival);
  if (is_push_[request.item]) {
    push_waiters_[request.item].push_back(request);
  } else {
    const des::SimTime now = sim_.now();
    queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                       (now - queue_len_last_t_);
    queue_len_last_t_ = now;
    pull_queue_.add(request, population_->priority(request.cls),
                    catalog_->length(request.item),
                    catalog_->probability(request.item));
  }
  wake_if_idle();
}

void AdaptiveHybridServer::serve_next(bool just_did_push) {
  if (settled_ == to_settle_) {
    server_busy_ = false;
    return;
  }
  if (push_list_.empty()) {
    if (pull_queue_.empty()) {
      server_busy_ = false;
      return;
    }
    start_pull();
    return;
  }
  if (just_did_push && !pull_queue_.empty()) {
    start_pull();
  } else {
    start_push();
  }
}

void AdaptiveHybridServer::start_push() {
  if (push_list_.empty()) {
    throw std::logic_error(
        "AdaptiveHybridServer: start_push() with an empty push list");
  }
  if (push_pos_ >= push_list_.size()) push_pos_ = 0;
  const catalog::ItemId item = push_list_[push_pos_++];
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  sim_.schedule_in(catalog_->length(item),
                   [this, catching = std::move(catching)]() {
                     ++push_transmissions_;
                     for (const auto& r : catching) deliver(r, true);
                     serve_next(/*just_did_push=*/true);
                   });
}

void AdaptiveHybridServer::start_pull() {
  const des::SimTime now = sim_.now();
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len = now > 0.0 ? queue_len_area_ / now : 1.0;
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "AdaptiveHybridServer: non-empty pull queue yielded no entry");
  }
  sim_.schedule_in(entry->length, [this, entry = std::move(*entry)]() {
    ++pull_transmissions_;
    for (const auto& r : entry.pending) deliver(r, false);
    serve_next(/*just_did_push=*/false);
  });
}

AdaptiveResult AdaptiveHybridServer::run(const workload::Trace& trace) {
  sim_.reset();
  pull_queue_.clear();
  for (auto& waiters : push_waiters_) waiters.clear();
  estimator_ =
      workload::PopularityEstimator(catalog_->size(),
                                    config_.estimator_half_life);
  collector_ =
      std::make_unique<metrics::ClassCollector>(population_->num_classes());
  to_settle_ = trace.size();
  settled_ = 0;
  arrived_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  reoptimizations_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;
  cutoff_history_.clear();

  // Initial partition: the catalog's own rank order (ids 0..D-1).
  std::vector<catalog::ItemId> initial_ranking(catalog_->size());
  for (catalog::ItemId id = 0; id < catalog_->size(); ++id) {
    initial_ranking[id] = id;
  }
  set_push_set(initial_ranking, config_.initial_cutoff);

  for (const auto& request : trace.requests()) {
    sim_.schedule_at(request.arrival,
                     [this, request]() { on_arrival(request); });
  }
  server_busy_ = false;
  if (!push_list_.empty()) {
    server_busy_ = true;
    sim_.schedule_at(0.0, [this]() { serve_next(/*just_did_push=*/true); });
  }
  schedule_reoptimization();
  sim_.run();

  AdaptiveResult result;
  result.per_class = collector_->all();
  result.end_time = sim_.now();
  result.push_transmissions = push_transmissions_;
  result.pull_transmissions = pull_transmissions_;
  result.reoptimizations = reoptimizations_;
  result.cutoff_history = cutoff_history_;
  return result;
}

}  // namespace pushpull::core
