#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault_config.hpp"
#include "obs/config.hpp"
#include "resilience/resilience_config.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"

namespace pushpull::core {

/// Configuration of one hybrid-server run. Defaults are the paper's
/// simulation assumptions (§5.1) with the unconstrained-bandwidth channel
/// used in the delay experiments.
struct HybridConfig {
  /// Cutoff point K: items [0, K) are pushed, [K, D) pulled.
  std::size_t cutoff = 0;

  /// Importance-factor weight α in Eq. 1 / Eq. 6 (ignored by other pull
  /// policies).
  double alpha = 0.5;

  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;
  sched::PushPolicyKind push_policy = sched::PushPolicyKind::kFlat;

  /// Starvation guard: when > 0 the pull policy is wrapped in an aging
  /// decorator adding `aging_rate · (now − first arrival)` to every score,
  /// bounding how long any entry can be overtaken (see sched::AgingPolicy).
  double aging_rate = 0.0;

  /// Total downlink bandwidth partitioned among classes; <= 0 models an
  /// unconstrained channel (no blocking).
  double total_bandwidth = 0.0;

  /// Per-class bandwidth fractions; empty means an equal split.
  std::vector<double> bandwidth_fractions;

  /// Mean of the Poisson bandwidth demand of one pull transmission.
  double mean_bandwidth_demand = 1.0;

  /// Mean of a client's exponentially distributed patience: a request not
  /// delivered within its patience is abandoned (dropped). <= 0 disables
  /// impatience (clients wait forever), which is the paper's base setting.
  double mean_patience = 0.0;

  /// Seed for the server's own randomness (bandwidth demand, patience and
  /// fault-channel draws).
  std::uint64_t seed = 1;

  /// Fault-injection layer: unreliable downlink, retry recovery and
  /// pull-queue overload shedding. The default is the paper's perfect
  /// channel and is bit-invisible in simulation output.
  fault::FaultConfig fault;

  /// Robustness layer: seeded server crash/recovery plus the overload
  /// degradation ladder. Default-inert — with crashes disabled and the
  /// ladder off, no events are scheduled and no RNG streams are derived, so
  /// output is bit-identical to builds without the layer.
  resilience::ResilienceConfig resilience;

  /// Fraction of each run treated as warm-up: requests arriving before this
  /// fraction of the trace span are simulated but excluded from statistics.
  double warmup_fraction = 0.0;

  /// Observability layer (tracing, counters, histograms). Default-off and
  /// bit-invisible: observation is write-only from the simulation's
  /// perspective, so enabling it never changes a single output number —
  /// which is also why it is excluded from replication fingerprints.
  obs::ObsConfig obs;
};

}  // namespace pushpull::core
