#include "core/multichannel_server.hpp"

#include <stdexcept>
#include <string>

namespace pushpull::core {

MultiChannelServer::MultiChannelServer(const catalog::Catalog& cat,
                                       const workload::ClientPopulation& pop,
                                       MultiChannelConfig config)
    : catalog_(&cat), population_(&pop), config_(std::move(config)) {
  if (config_.cutoff > cat.size()) {
    throw std::invalid_argument(
        "MultiChannelServer: cutoff beyond catalog size");
  }
  if (config_.num_pull_channels == 0) {
    throw std::invalid_argument(
        "MultiChannelServer: need at least one pull channel");
  }
  if (config_.cutoff > 0) {
    push_sched_ =
        sched::make_push_scheduler(config_.push_policy, cat, config_.cutoff);
  }
  pull_policy_ = sched::make_pull_policy(config_.pull_policy, config_.alpha);
  push_waiters_.resize(cat.size());
}

void MultiChannelServer::settle_one() {
  ++settled_;
  if (settled_ == to_settle_) sim_.request_stop();
}

void MultiChannelServer::deliver(const workload::Request& request,
                                 bool via_push) {
  collector_->record_served(request.cls, sim_.now() - request.arrival,
                            via_push, sim_.now());
  settle_one();
}

void MultiChannelServer::on_arrival(const workload::Request& request) {
  collector_->record_arrival(request.cls);
  if (request.item < config_.cutoff) {
    push_waiters_[request.item].push_back(request);
    return;
  }
  const des::SimTime now = sim_.now();
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  pull_queue_.add(request, population_->priority(request.cls),
                  catalog_->length(request.item),
                  catalog_->probability(request.item));
  try_dispatch_pulls();
}

void MultiChannelServer::push_loop() {
  if (settled_ == to_settle_) return;
  const catalog::ItemId item = push_sched_->next();
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  const double airtime = catalog_->length(item);
  push_airtime_ += airtime;
  sim_.schedule_in(airtime, [this, catching = std::move(catching)]() {
    ++push_transmissions_;
    for (const auto& r : catching) deliver(r, true);
    push_loop();  // the broadcast channel never pauses
  });
}

void MultiChannelServer::try_dispatch_pulls() {
  for (std::size_t channel = 0;
       channel < channel_busy_.size() && !pull_queue_.empty(); ++channel) {
    if (!channel_busy_[channel]) dispatch_pull(channel);
  }
}

void MultiChannelServer::dispatch_pull(std::size_t channel) {
  if (channel_busy_[channel]) {
    throw std::logic_error(
        "MultiChannelServer: dispatch on busy pull channel " +
        std::to_string(channel));
  }
  const des::SimTime now = sim_.now();
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len = now > 0.0 ? queue_len_area_ / now : 1.0;
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "MultiChannelServer: non-empty pull queue yielded no entry");
  }
  channel_busy_[channel] = true;
  channel_airtime_[channel] += entry->length;
  sim_.schedule_in(entry->length,
                   [this, channel, entry = std::move(*entry)]() {
                     ++pull_transmissions_;
                     channel_busy_[channel] = false;
                     for (const auto& r : entry.pending) deliver(r, false);
                     if (!pull_queue_.empty()) dispatch_pull(channel);
                   });
}

MultiChannelResult MultiChannelServer::run(const workload::Trace& trace) {
  sim_.reset();
  pull_queue_.clear();
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  collector_ =
      std::make_unique<metrics::ClassCollector>(population_->num_classes());
  channel_busy_.assign(config_.num_pull_channels, false);
  channel_airtime_.assign(config_.num_pull_channels, 0.0);
  push_airtime_ = 0.0;
  to_settle_ = trace.size();
  settled_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;

  for (const auto& request : trace.requests()) {
    sim_.schedule_at(request.arrival,
                     [this, request]() { on_arrival(request); });
  }
  if (config_.cutoff > 0 && !trace.empty()) {
    sim_.schedule_at(0.0, [this]() { push_loop(); });
  }
  sim_.run();

  MultiChannelResult result;
  result.per_class = collector_->all();
  result.end_time = sim_.now();
  result.push_transmissions = push_transmissions_;
  result.pull_transmissions = pull_transmissions_;
  if (result.end_time > 0.0) {
    result.push_channel_utilization = push_airtime_ / result.end_time;
    result.pull_channel_utilization.resize(config_.num_pull_channels);
    for (std::size_t c = 0; c < config_.num_pull_channels; ++c) {
      result.pull_channel_utilization[c] =
          channel_airtime_[c] / result.end_time;
    }
  } else {
    result.pull_channel_utilization.assign(config_.num_pull_channels, 0.0);
  }
  return result;
}

}  // namespace pushpull::core
