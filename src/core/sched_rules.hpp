#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "catalog/catalog.hpp"
#include "fault/shedding.hpp"
#include "metrics/class_stats.hpp"
#include "resilience/overload.hpp"
#include "sched/pull/entry.hpp"
#include "workload/request.hpp"

namespace pushpull::core::sched_rules {

// metrics keeps its own ClassId alias so the metrics layer never includes
// workload/ (layer DAG, tools/detlint/layers.toml); this is the one place
// that sees both layers, so it pins them together.
static_assert(std::is_same_v<workload::ClassId, metrics::ClassId>,
              "metrics::ClassId must stay alias-identical to "
              "workload::ClassId");

/// The scheduling rules `core::HybridServer` (DES) and `serve::LiveServer`
/// (completion-queue loop) must apply *identically*, factored into one
/// header so drift is impossible by construction. Call sites in the two
/// engines are wrapped in `// parity:begin(<rule>)` regions that
/// tools/detlint's P1 pass token-compares, so what must remain duplicated
/// (the glue around these calls) is machine-checked instead of trusted.
///
/// Everything here is a pure function of its arguments: no engine state,
/// no RNG, no clock. That is what makes the DES replay of a recorded live
/// run bit-equal to the live run itself.

/// The class whose bandwidth pool a pull transmission draws from: the most
/// important (lowest id) class with a pending request for the item.
[[nodiscard]] inline workload::ClassId owning_class(
    const sched::PullEntry& entry) noexcept {
  workload::ClassId best = entry.pending.front().cls;
  for (const auto& r : entry.pending) {
    if (r.cls < best) best = r.cls;
  }
  return best;
}

/// Push cutoff in force: the configured K plus the ladder's widen-push
/// boost, clamped to the catalog.
[[nodiscard]] inline std::size_t effective_cutoff(
    std::size_t base_cutoff, std::size_t boost,
    std::size_t catalog_size) noexcept {
  return std::min(base_cutoff + boost, catalog_size);
}

/// Pull-queue capacity in force: the hard fault cap wins, else the ladder's
/// soft cap at shed-low-priority and above (0 = unbounded).
[[nodiscard]] inline std::size_t effective_queue_capacity(
    resilience::OverloadLevel level, std::size_t fault_capacity,
    std::size_t capacity_ref) noexcept {
  if (fault_capacity > 0) return fault_capacity;
  if (level >= resilience::OverloadLevel::kShedLowPriority) {
    return capacity_ref;  // ladder soft cap
  }
  return 0;
}

/// Shed policy in force: the ladder forces drop-lowest-priority at
/// shed-low-priority and above.
[[nodiscard]] inline fault::ShedPolicy effective_shed_policy(
    resilience::OverloadLevel level, fault::ShedPolicy configured) noexcept {
  if (level >= resilience::OverloadLevel::kShedLowPriority) {
    return fault::ShedPolicy::kDropLowestPriority;
  }
  return configured;
}

/// The ladder's admission control: true when `cls` is refused at the
/// uplink. Never starves a single-class population; brownout admits only
/// the most important class; admission-control rejects the least important.
[[nodiscard]] inline bool uplink_rejected(resilience::OverloadLevel level,
                                          workload::ClassId cls,
                                          std::size_t classes) noexcept {
  if (classes < 2) return false;  // never starve a single-class population
  if (level >= resilience::OverloadLevel::kBrownout) {
    return cls >= 1;  // only the most important class is admitted
  }
  if (level >= resilience::OverloadLevel::kAdmissionControl) {
    return cls == classes - 1;
  }
  return false;
}

/// The ladder's occupancy signal. Requests the widen-push boost parked out
/// of the pull queue are still the ladder's backlog until delivered:
/// excluding them makes the controller oscillate (widening empties the
/// queue, the next eval sees zero occupancy and de-escalates, the shrink
/// refills the queue), and the flip-flop restarts the push program each
/// time, which can starve the de-widened items forever when no patience
/// timer or deadline reaps them.
[[nodiscard]] inline double ladder_occupancy(
    std::size_t queued_requests,
    const std::vector<std::vector<workload::Request>>& push_waiters,
    std::size_t base_cutoff, std::size_t cutoff_in_force,
    std::size_t fault_capacity, std::size_t capacity_ref) noexcept {
  const std::size_t cap = fault_capacity > 0 ? fault_capacity : capacity_ref;
  std::size_t boosted_backlog = 0;
  for (std::size_t item = base_cutoff; item < cutoff_in_force; ++item) {
    boosted_backlog += push_waiters[item].size();
  }
  return static_cast<double>(queued_requests + boosted_backlog) /
         static_cast<double>(cap);
}

/// The ladder's pressure signal: the worst per-class blocking EWMA.
[[nodiscard]] inline double worst_blocking_ewma(
    const std::vector<double>& blocking_ewma) noexcept {
  double worst = 0.0;
  for (const double e : blocking_ewma) worst = std::max(worst, e);
  return worst;
}

/// Where the passengers of a corrupted broadcast go. True: the item is
/// still on the broadcast program, so the waiters rejoin the (re-armed)
/// park and catch the next cycle. False: the ladder shrank the item out of
/// the program while the replica was on air — the park would strand them
/// forever (no next cycle, and the shrink migration can't see passengers
/// of an in-flight transmission), so they are pull requests again and
/// re-enter through admission control.
[[nodiscard]] inline bool repark_after_corruption(
    catalog::ItemId item, std::size_t cutoff_in_force) noexcept {
  return item < cutoff_in_force;
}

/// Deliver-at-end accounting: latency is measured from the request's
/// arrival to the transmission *end*, never to its start. The end time is
/// also the class's service instant, feeding the inter-service-gap
/// statistics in ClassStats.
inline void record_delivery(metrics::ClassCollector& stats,
                            const workload::Request& request, double end_time,
                            bool via_push) {
  stats.record_served(request.cls, end_time - request.arrival, via_push,
                      end_time);
}

/// Overload-transition reporting: both engines export the full ordered
/// transition log and the high-water level (PR 7's third cross-engine bug
/// was the live report silently dropping the transitions).
template <typename Report>
inline void export_overload(Report& out,
                            const resilience::OverloadController& ladder) {
  out.overload_transitions = ladder.transitions();
  out.max_overload_level = ladder.max_level();
}

}  // namespace pushpull::core::sched_rules
