#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/service_class.hpp"

namespace pushpull::core {

/// Per-class downlink bandwidth pools with admission control.
///
/// The paper partitions the channel bandwidth among service classes; a pull
/// transmission demands a Poisson-distributed amount of bandwidth from the
/// pool of the class it serves and is *blocked* (its pending requests lost)
/// when the pool cannot cover the demand. Assigning the premium class a
/// generous fraction is how the paper drives premium blocking to ~0
/// (abstract, §1, §5).
///
/// A non-positive total models an unconstrained channel: every acquisition
/// succeeds and nothing is tracked. Delay-focused experiments use that mode.
class BandwidthManager {
 public:
  /// Unconstrained channel.
  BandwidthManager() = default;

  /// `fractions[c]` of `total` is reserved for class c; fractions must be
  /// positive and are normalized to sum to 1.
  BandwidthManager(double total, std::vector<double> fractions);

  /// Equal split across `num_classes`.
  BandwidthManager(double total, std::size_t num_classes);

  [[nodiscard]] bool unconstrained() const noexcept {
    return capacity_.empty();
  }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return capacity_.size();
  }
  [[nodiscard]] double capacity(workload::ClassId cls) const noexcept {
    return capacity_[cls];
  }
  [[nodiscard]] double available(workload::ClassId cls) const noexcept {
    return available_[cls];
  }
  [[nodiscard]] double in_use(workload::ClassId cls) const noexcept {
    return capacity_[cls] - available_[cls];
  }

  /// Attempts to reserve `demand` units from class `cls`'s pool. On success
  /// the caller must later release() the same amount.
  [[nodiscard]] bool try_acquire(workload::ClassId cls, double demand);

  /// Returns previously acquired bandwidth to the pool.
  void release(workload::ClassId cls, double demand);

  /// Cumulative admission outcomes (constrained mode only).
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::vector<double> capacity_;
  std::vector<double> available_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace pushpull::core
