#pragma once

#include <cstdint>
#include <vector>

#include "des/event.hpp"
#include "metrics/class_stats.hpp"
#include "metrics/welford.hpp"
#include "resilience/overload.hpp"
#include "workload/population.hpp"

namespace pushpull::core {

/// Outcome of one hybrid-server run.
struct SimResult {
  std::vector<metrics::ClassStats> per_class;
  des::SimTime end_time = 0.0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  std::uint64_t blocked_transmissions = 0;
  /// Downlink transmissions voided by the fault layer's burst-error
  /// channel, split by phase (both zero on a perfect channel).
  std::uint64_t corrupted_push_transmissions = 0;
  std::uint64_t corrupted_pull_transmissions = 0;
  /// Time-weighted mean number of pending pull requests (the simulated
  /// counterpart of the model's E[L_pull]).
  double mean_pull_queue_len = 0.0;
  /// Largest instantaneous pull-queue length observed (for the queue-cap
  /// invariant).
  std::size_t max_pull_queue_len = 0;

  // Resilience layer (all zero/empty with crashes and ladder disabled).
  std::uint64_t crashes = 0;
  /// Total virtual time the server spent dark.
  double total_downtime = 0.0;
  /// Re-requests issued by clients whose pending work a crash wiped out.
  std::uint64_t storm_rerequests = 0;
  /// Largest single-crash re-request storm.
  std::uint64_t largest_storm = 0;
  /// Per-request recovery latency: crash instant → the re-request landing
  /// back in the pull queue.
  metrics::Welford recovery_latency;
  /// Every degradation-ladder move, in event order.
  std::vector<resilience::OverloadTransition> overload_transitions;
  /// Highest ladder level reached during the run.
  resilience::OverloadLevel max_overload_level =
      resilience::OverloadLevel::kNormal;
  /// Out-of-order event dispatches observed by the kernel (the event-time
  /// monotonicity invariant; always 0 for a completed run).
  std::uint64_t event_order_violations = 0;

  /// Transmissions that actually carried data to clients, corrupted or not
  /// (the server's *throughput* in airtime slots).
  [[nodiscard]] std::uint64_t total_transmissions() const noexcept {
    return push_transmissions + pull_transmissions;
  }

  /// Fraction of transmissions the channel voided — airtime the difference
  /// between item throughput and user-perceived goodput.
  [[nodiscard]] double corruption_ratio() const noexcept {
    const std::uint64_t total = total_transmissions();
    return total ? static_cast<double>(corrupted_push_transmissions +
                                       corrupted_pull_transmissions) /
                       static_cast<double>(total)
                 : 0.0;
  }

  [[nodiscard]] metrics::ClassStats overall() const {
    metrics::ClassStats total;
    for (const auto& s : per_class) total.merge_counters(s);
    return total;
  }

  [[nodiscard]] double mean_wait(workload::ClassId cls) const {
    return per_class[cls].wait.mean();
  }

  /// The paper's prioritized cost of class j: q_j × (expected delay of
  /// class j).
  [[nodiscard]] double prioritized_cost(
      const workload::ClientPopulation& pop, workload::ClassId cls) const {
    return pop.priority(cls) * per_class[cls].wait.mean();
  }

  /// Total prioritized cost Σ_j q_j·E[W_j] — the objective the cutoff
  /// optimizer minimizes in Figs. 5–6.
  [[nodiscard]] double total_prioritized_cost(
      const workload::ClientPopulation& pop) const {
    double total = 0.0;
    for (workload::ClassId c = 0; c < per_class.size(); ++c) {
      total += prioritized_cost(pop, c);
    }
    return total;
  }
};

}  // namespace pushpull::core
