#include "core/cutoff_optimizer.hpp"

#include <stdexcept>

namespace pushpull::core {

CutoffScan scan_cutoffs(std::size_t k_min, std::size_t k_max, std::size_t step,
                        const std::function<double(std::size_t)>& cost) {
  if (k_min > k_max) {
    throw std::invalid_argument("scan_cutoffs: k_min > k_max");
  }
  if (step == 0) throw std::invalid_argument("scan_cutoffs: step must be > 0");

  CutoffScan scan;
  for (std::size_t k = k_min;; k += step) {
    scan.curve.push_back(CutoffSample{k, cost(k)});
    if (k_max - k < step) break;  // next step would overshoot
  }
  // Always include the right endpoint so the scan covers [k_min, k_max].
  if (scan.curve.back().cutoff != k_max) {
    scan.curve.push_back(CutoffSample{k_max, cost(k_max)});
  }

  scan.best_cutoff = scan.curve.front().cutoff;
  scan.best_cost = scan.curve.front().cost;
  for (const auto& sample : scan.curve) {
    if (sample.cost < scan.best_cost) {
      scan.best_cost = sample.cost;
      scan.best_cutoff = sample.cutoff;
    }
  }
  return scan;
}

CutoffScan scan_cutoffs(std::size_t k_min, std::size_t k_max, std::size_t step,
                        const std::function<double(std::size_t)>& cost,
                        const obs::Tracer& tracer) {
  const CutoffScan scan = scan_cutoffs(k_min, k_max, step, cost);
  for (const auto& sample : scan.curve) {
    tracer.emit<obs::Category::kCutoff>(0.0, "sample", sample.cutoff, 0,
                                        sample.cost);
  }
  tracer.emit<obs::Category::kCutoff>(0.0, "best", scan.best_cutoff, 0,
                                      scan.best_cost);
  return scan;
}

}  // namespace pushpull::core
