#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"
#include "sched/pull/entry.hpp"
#include "sched/pull/policy.hpp"
#include "workload/population.hpp"

namespace pushpull::core {

/// The server's pull queue: one aggregated entry per distinct requested
/// item (the paper's R_i / Q_i / S_i bookkeeping), with policy-driven
/// extraction of the most important entry.
///
/// Storage is a dense vector with an item→slot index; removal swaps with
/// the back, so insertion, lookup and removal are O(1). Selection has two
/// engines:
///
/// - kIndexed (default): cached per-entry scores plus a tournament max-tree
///   over the slots. Mutations (add / extract / remove_request) mark the
///   touched slot dirty; extraction rescores only dirty slots and reads the
///   winner at the tree root — O(d·log n) per slot where d is the number of
///   entries whose R_i/Q_i/age inputs changed since the last extraction,
///   instead of the O(n) full rescan. Only policies whose score depends
///   solely on the entry (PullPolicy::ctx_invariant()) can use the cache;
///   context-dependent policies (RxW, LWF, queue-aware importance, aging)
///   transparently fall back to the reference scan.
/// - kScan: the original O(n) linear rescan, kept as the reference engine
///   for the differential fuzz oracle and the throughput benchmark.
///
/// Both engines are bit-identical by construction: the tree comparator is
/// the scan's exact fold condition (higher score wins, ties toward the
/// lower slot's item id resolved by `item <`), and max over that total
/// order is associative, so the tree winner equals the left-to-right scan
/// winner. Any NaN score (where the fold is not associative) forces the
/// scan engine for the rest of the policy's tenure.
class PullQueue {
 public:
  enum class SelectMode { kScan, kIndexed };

  PullQueue() = default;
  explicit PullQueue(SelectMode mode) : mode_(mode) {}

  /// True when no item has pending requests.
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Number of distinct items with pending requests.
  [[nodiscard]] std::size_t distinct_items() const noexcept {
    return entries_.size();
  }

  /// Total pending requests across all items (the queue length the
  /// analytical model calls L_pull).
  [[nodiscard]] std::size_t total_requests() const noexcept {
    return total_requests_;
  }

  [[nodiscard]] std::span<const sched::PullEntry> entries() const noexcept {
    return entries_;
  }

  /// Appends a request, creating or extending the item's entry.
  /// `priority` is the requesting client's q_j; `length` and `popularity`
  /// are the item's catalog attributes (cached in the entry so policies
  /// never need catalog access).
  void add(const workload::Request& request, double priority, double length,
           double popularity);

  /// Entry for a specific item, if present.
  [[nodiscard]] const sched::PullEntry* find(catalog::ItemId item) const;

  /// Scores all entries under `policy` and removes and returns the best
  /// (ties broken toward the lowest item id). Returns nullopt when empty.
  ///
  /// Cached scores are keyed on the policy object's address: extracting
  /// with a different PullPolicy instance rescores everything. A caller
  /// that destroys a policy and constructs a replacement at the same
  /// address between extractions must call invalidate_scores() (no current
  /// caller replaces a policy mid-run).
  [[nodiscard]] std::optional<sched::PullEntry> extract_best(
      const sched::PullPolicy& policy, const sched::PullContext& ctx);

  /// Removes and returns a specific item's entry (used by tests and by
  /// blocking paths that must drop a selected entry).
  [[nodiscard]] std::optional<sched::PullEntry> extract(catalog::ItemId item);

  /// Removes one pending request (an impatient client abandoning); the
  /// entry's priority sum and first-arrival are re-derived, and the entry
  /// disappears when its last request leaves. `priority` must be the q_j
  /// that was passed to add(). Returns false if the request is not queued.
  bool remove_request(catalog::ItemId item, workload::RequestId request,
                      double priority);

  void clear();

  /// Drops every cached score (next extract_best rescores all entries).
  void invalidate_scores() noexcept { last_policy_ = nullptr; }

  /// Installs (nullptr removes) the observability counter hook. The queue
  /// tallies request enters/leaves, winning extracts and the peak length
  /// into it; a null hook costs one pointer test per mutation. The hook
  /// never influences queue behavior.
  void set_counters(obs::QueueCounters* counters) noexcept {
    counters_ = counters;
  }

 private:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = std::numeric_limits<Slot>::max();

  void mark_dirty(std::size_t slot);
  /// The reference selection: the exact legacy left-to-right fold.
  [[nodiscard]] std::size_t select_by_scan(const sched::PullPolicy& policy,
                                           const sched::PullContext& ctx) const;
  [[nodiscard]] Slot tree_winner(Slot l, Slot r) const noexcept;
  /// Rewrites slot's leaf (empty when slot >= size) and its root path.
  void tree_set_leaf(std::size_t slot);
  /// (Re)builds the tree with capacity for the current entry count.
  void rebuild_tree();

  SelectMode mode_ = SelectMode::kIndexed;
  std::vector<sched::PullEntry> entries_;
  std::unordered_map<catalog::ItemId, std::size_t> slot_of_;
  std::size_t total_requests_ = 0;
  obs::QueueCounters* counters_ = nullptr;

  // Indexed-selection state. scores_/is_dirty_ parallel entries_; dirty_
  // is a stack of slots to rescore (flag-deduplicated, entries may be
  // stale after swap-removes and are revalidated on drain). tree_ is a
  // flat tournament tree: leaves at [cap, 2cap) hold slot ids (kNoSlot
  // when vacant), tree_[1] is the winning slot.
  std::vector<double> scores_;
  std::vector<char> is_dirty_;
  std::vector<Slot> dirty_;
  std::vector<Slot> tree_;
  std::size_t tree_cap_ = 0;
  const sched::PullPolicy* last_policy_ = nullptr;
  bool has_nan_score_ = false;
};

}  // namespace pushpull::core
