#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"
#include "sched/pull/entry.hpp"
#include "sched/pull/policy.hpp"
#include "workload/population.hpp"

namespace pushpull::core {

/// The server's pull queue: one aggregated entry per distinct requested
/// item (the paper's R_i / Q_i / S_i bookkeeping), with policy-driven
/// extraction of the most important entry.
///
/// Storage is a dense vector with an item→slot index; removal swaps with
/// the back, so insertion, lookup and removal are O(1) and selection is one
/// linear scan — the right shape for catalogs of 10²–10⁴ items where the
/// policy scores are time-varying (RxW) and a heap cannot be kept valid.
class PullQueue {
 public:
  /// True when no item has pending requests.
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Number of distinct items with pending requests.
  [[nodiscard]] std::size_t distinct_items() const noexcept {
    return entries_.size();
  }

  /// Total pending requests across all items (the queue length the
  /// analytical model calls L_pull).
  [[nodiscard]] std::size_t total_requests() const noexcept {
    return total_requests_;
  }

  [[nodiscard]] std::span<const sched::PullEntry> entries() const noexcept {
    return entries_;
  }

  /// Appends a request, creating or extending the item's entry.
  /// `priority` is the requesting client's q_j; `length` and `popularity`
  /// are the item's catalog attributes (cached in the entry so policies
  /// never need catalog access).
  void add(const workload::Request& request, double priority, double length,
           double popularity);

  /// Entry for a specific item, if present.
  [[nodiscard]] const sched::PullEntry* find(catalog::ItemId item) const;

  /// Scores all entries under `policy` and removes and returns the best
  /// (ties broken toward the lowest item id). Returns nullopt when empty.
  [[nodiscard]] std::optional<sched::PullEntry> extract_best(
      const sched::PullPolicy& policy, const sched::PullContext& ctx);

  /// Removes and returns a specific item's entry (used by tests and by
  /// blocking paths that must drop a selected entry).
  [[nodiscard]] std::optional<sched::PullEntry> extract(catalog::ItemId item);

  /// Removes one pending request (an impatient client abandoning); the
  /// entry's priority sum and first-arrival are re-derived, and the entry
  /// disappears when its last request leaves. `priority` must be the q_j
  /// that was passed to add(). Returns false if the request is not queued.
  bool remove_request(catalog::ItemId item, workload::RequestId request,
                      double priority);

  void clear();

  /// Installs (nullptr removes) the observability counter hook. The queue
  /// tallies request enters/leaves, winning extracts and the peak length
  /// into it; a null hook costs one pointer test per mutation. The hook
  /// never influences queue behavior.
  void set_counters(obs::QueueCounters* counters) noexcept {
    counters_ = counters;
  }

 private:
  std::vector<sched::PullEntry> entries_;
  std::unordered_map<catalog::ItemId, std::size_t> slot_of_;
  std::size_t total_requests_ = 0;
  obs::QueueCounters* counters_ = nullptr;
};

}  // namespace pushpull::core
