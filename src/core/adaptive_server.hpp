#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/pull_queue.hpp"
#include "core/result.hpp"
#include "des/simulator.hpp"
#include "metrics/class_stats.hpp"
#include "sched/pull/policy.hpp"
#include "workload/population.hpp"
#include "workload/popularity_estimator.hpp"
#include "workload/trace.hpp"

namespace pushpull::core {

/// Configuration of the adaptive (self-tuning) hybrid server.
struct AdaptiveConfig {
  /// Push-set size before the first re-optimization.
  std::size_t initial_cutoff = 0;

  /// Importance-factor weight (see HybridConfig::alpha).
  double alpha = 0.5;
  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;

  /// Virtual time between cutoff re-optimizations (the paper's "periodically
  /// the algorithm is executed for different cutoff-points").
  double reoptimize_interval = 500.0;

  /// Half-life of the popularity estimator's exponential forgetting.
  double estimator_half_life = 300.0;

  /// Step of the analytic cutoff scan at each re-optimization.
  std::size_t scan_step = 5;
};

/// Outcome of an adaptive run: the usual per-class statistics plus the
/// trajectory of the cutoff over time.
struct AdaptiveResult {
  std::vector<metrics::ClassStats> per_class;
  des::SimTime end_time = 0.0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  std::uint64_t reoptimizations = 0;
  /// (time, push-set size) after every re-optimization, starting with the
  /// initial configuration at time 0.
  std::vector<std::pair<des::SimTime, std::size_t>> cutoff_history;

  [[nodiscard]] metrics::ClassStats overall() const {
    metrics::ClassStats total;
    for (const auto& s : per_class) total.merge_counters(s);
    return total;
  }
  [[nodiscard]] double mean_wait(workload::ClassId cls) const {
    return per_class[cls].wait.mean();
  }
  [[nodiscard]] double total_prioritized_cost(
      const workload::ClientPopulation& pop) const {
    double total = 0.0;
    for (workload::ClassId c = 0; c < per_class.size(); ++c) {
      total += pop.priority(c) * per_class[c].wait.mean();
    }
    return total;
  }
};

/// The paper's dynamic variant of the hybrid scheduler: the push set is not
/// a fixed rank prefix but the top-K items of an *online popularity
/// estimate*, with K re-optimized periodically against the analytical
/// access-time model fed with the estimated popularity and the measured
/// arrival rate. Pending requests migrate when their item changes sides:
/// a newly-pushed item's queued pull requests become broadcast waiters, and
/// a newly-pulled item's waiters enter the pull queue.
///
/// Compared to HybridServer this class trades the bandwidth/blocking
/// machinery for adaptivity; both build on the same queue, policies and
/// DES kernel.
class AdaptiveHybridServer {
 public:
  AdaptiveHybridServer(const catalog::Catalog& cat,
                       const workload::ClientPopulation& pop,
                       AdaptiveConfig config);

  [[nodiscard]] AdaptiveResult run(const workload::Trace& trace);

  [[nodiscard]] const AdaptiveConfig& config() const noexcept {
    return config_;
  }

 private:
  void on_arrival(const workload::Request& request);
  void serve_next(bool just_did_push);
  void start_push();
  void start_pull();
  void deliver(const workload::Request& request, bool via_push);
  void settle_one();
  void wake_if_idle();
  void reoptimize();
  void schedule_reoptimization();
  void set_push_set(const std::vector<catalog::ItemId>& ranking,
                    std::size_t cutoff);

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  AdaptiveConfig config_;

  des::Simulator sim_;
  PullQueue pull_queue_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  workload::PopularityEstimator estimator_;

  std::vector<bool> is_push_;
  std::vector<catalog::ItemId> push_list_;  // estimated-rank order
  std::size_t push_pos_ = 0;
  std::vector<std::vector<workload::Request>> push_waiters_;
  std::unique_ptr<metrics::ClassCollector> collector_;

  // Run-scoped state.
  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  std::uint64_t arrived_ = 0;
  bool server_busy_ = false;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  std::uint64_t reoptimizations_ = 0;
  double queue_len_area_ = 0.0;
  des::SimTime queue_len_last_t_ = 0.0;
  std::vector<std::pair<des::SimTime, std::size_t>> cutoff_history_;
};

}  // namespace pushpull::core
