#include "core/hybrid_server.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "rng/exponential.hpp"
#include "sched/pull/aging.hpp"
#include "rng/poisson.hpp"
#include "rng/stream.hpp"

namespace pushpull::core {

HybridServer::HybridServer(const catalog::Catalog& cat,
                           const workload::ClientPopulation& pop,
                           HybridConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      demand_eng_(rng::StreamFactory(config_.seed).stream("bandwidth-demand")),
      patience_eng_(rng::StreamFactory(config_.seed).stream("patience")) {
  if (config_.cutoff > cat.size()) {
    throw std::invalid_argument("HybridServer: cutoff beyond catalog size");
  }
  if (config_.warmup_fraction < 0.0 || config_.warmup_fraction >= 1.0) {
    throw std::invalid_argument(
        "HybridServer: warmup_fraction must be in [0, 1)");
  }
  config_.fault.validate();
  if (config_.fault.enabled) {
    channel_.emplace(config_.fault.channel,
                     rng::StreamFactory(config_.seed).stream("fault-channel"));
  }
  if (config_.cutoff > 0) {
    push_sched_ =
        sched::make_push_scheduler(config_.push_policy, cat, config_.cutoff);
  }
  pull_policy_ = sched::make_pull_policy(config_.pull_policy, config_.alpha);
  if (config_.aging_rate > 0.0) {
    pull_policy_ = std::make_unique<sched::AgingPolicy>(
        std::move(pull_policy_), config_.aging_rate);
  }
  if (config_.total_bandwidth > 0.0) {
    std::vector<double> fractions = config_.bandwidth_fractions;
    if (fractions.empty()) fractions.assign(pop.num_classes(), 1.0);
    if (fractions.size() != pop.num_classes()) {
      throw std::invalid_argument(
          "HybridServer: bandwidth fractions must match class count");
    }
    bandwidth_ = BandwidthManager(config_.total_bandwidth, std::move(fractions));
  }
  push_waiters_.resize(cat.size());
}

workload::ClassId HybridServer::owning_class(
    const sched::PullEntry& entry) noexcept {
  workload::ClassId best = entry.pending.front().cls;
  for (const auto& r : entry.pending) {
    if (r.cls < best) best = r.cls;
  }
  return best;
}

void HybridServer::note_queue_len() {
  const des::SimTime now = sim_.now();
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
}

void HybridServer::settle_one() {
  ++settled_;
  if (settled_ == to_settle_) sim_.request_stop();
}

void HybridServer::arm_patience(const workload::Request& request) {
  if (config_.mean_patience <= 0.0) return;
  const double patience =
      rng::exponential(patience_eng_, 1.0 / config_.mean_patience);
  const des::EventId event = sim_.schedule_in(
      patience, [this, request]() { on_patience_expired(request); });
  patience_.emplace(request.id, event);
}

void HybridServer::disarm_patience(workload::RequestId request) {
  if (config_.mean_patience <= 0.0) return;
  const auto it = patience_.find(request);
  if (it == patience_.end()) return;
  sim_.cancel(it->second);
  patience_.erase(it);
}

void HybridServer::on_patience_expired(const workload::Request& request) {
  patience_.erase(request.id);
  bool removed = false;
  if (request.item < config_.cutoff) {
    auto& waiters = push_waiters_[request.item];
    for (auto it = waiters.begin(); it != waiters.end(); ++it) {
      if (it->id == request.id) {
        waiters.erase(it);
        removed = true;
        break;
      }
    }
  } else {
    note_queue_len();
    removed = pull_queue_.remove_request(request.item, request.id,
                                         population_->priority(request.cls));
  }
  // The timer is disarmed whenever the request is committed or dropped, so
  // an expired timer must always find its request still waiting.
  if (!removed) {
    throw std::logic_error(
        "HybridServer: patience timer fired for request " +
        std::to_string(request.id) + " (item " +
        std::to_string(request.item) +
        ") that is no longer waiting; timers must be disarmed when a "
        "request is committed to a transmission or dropped");
  }
  retry_count_.erase(request.id);
  if (measured(request)) collector_->record_abandoned(request.cls);
  settle_one();
}

bool HybridServer::transmission_corrupted() {
  return channel_.has_value() && channel_->corrupts();
}

void HybridServer::shed_request(const workload::Request& request) {
  retry_count_.erase(request.id);
  if (measured(request)) collector_->record_shed(request.cls);
  settle_one();
}

bool HybridServer::admit_pull(const workload::Request& request) {
  const std::size_t capacity = config_.fault.queue_capacity;
  if (capacity == 0 || pull_queue_.total_requests() < capacity) return true;
  if (config_.fault.shed_policy == fault::ShedPolicy::kDropTail) {
    shed_request(request);
    return false;
  }
  // Drop-lowest-priority: sacrifice the least important queued request.
  // Ties prefer the youngest (highest id) victim, and an arrival that is
  // itself no more important than the minimum is the one shed — both rules
  // are deterministic, so runs replay identically.
  const workload::Request* victim = nullptr;
  double victim_priority = std::numeric_limits<double>::infinity();
  for (const auto& entry : pull_queue_.entries()) {
    for (const auto& r : entry.pending) {
      const double priority = population_->priority(r.cls);
      if (priority < victim_priority ||
          (priority == victim_priority && victim && r.id > victim->id)) {
        victim = &r;
        victim_priority = priority;
      }
    }
  }
  if (!victim || population_->priority(request.cls) <= victim_priority) {
    shed_request(request);
    return false;
  }
  const workload::Request evicted = *victim;  // copy before queue mutation
  disarm_patience(evicted.id);
  pull_queue_.remove_request(evicted.item, evicted.id, victim_priority);
  shed_request(evicted);
  return true;
}

void HybridServer::requeue_pull(const workload::Request& request) {
  note_queue_len();
  if (admit_pull(request)) {
    pull_queue_.add(request, population_->priority(request.cls),
                    catalog_->length(request.item),
                    catalog_->probability(request.item));
    arm_patience(request);
  }
  if (!server_busy_) {
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void HybridServer::on_pull_corrupted(const sched::PullEntry& entry) {
  for (const auto& r : entry.pending) {
    if (measured(r)) collector_->record_corrupted(r.cls);
    const std::uint32_t attempt = ++retry_count_[r.id];
    if (attempt > config_.fault.retry.max_retries) {
      retry_count_.erase(r.id);
      if (measured(r)) collector_->record_lost(r.cls);
      settle_one();
      continue;
    }
    if (measured(r)) collector_->record_retry(r.cls);
    sim_.schedule_in(config_.fault.retry.backoff_delay(attempt),
                     [this, r]() { requeue_pull(r); });
  }
}

void HybridServer::deliver(const workload::Request& request, bool via_push) {
  if (measured(request)) {
    collector_->record_served(request.cls, sim_.now() - request.arrival,
                              via_push);
  }
  settle_one();
}

void HybridServer::on_arrival(const workload::Request& request) {
  if (measured(request)) collector_->record_arrival(request.cls);
  if (request.item < config_.cutoff) {
    // Push item: the request is "ignored" by the scheduler (the item is on
    // the broadcast program anyway); park it to measure its delay.
    push_waiters_[request.item].push_back(request);
    arm_patience(request);
    return;
  }
  note_queue_len();
  if (!admit_pull(request)) return;  // shed by the bounded-queue policy
  pull_queue_.add(request, population_->priority(request.cls),
                  catalog_->length(request.item),
                  catalog_->probability(request.item));
  arm_patience(request);
  if (!server_busy_) {
    // Pure-pull server (cutoff 0) sleeping on an empty queue: wake it.
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void HybridServer::serve_next(bool just_did_push) {
  if (settled_ == to_settle_) {
    server_busy_ = false;
    return;
  }
  if (config_.cutoff == 0) {
    if (pull_queue_.empty()) {
      server_busy_ = false;  // idle until the next pull arrival wakes us
      return;
    }
    start_pull();
    return;
  }
  // Strict alternation: one pull opportunity after every push.
  if (just_did_push && !pull_queue_.empty()) {
    start_pull();
  } else {
    start_push();
  }
}

void HybridServer::start_push() {
  const catalog::ItemId item = push_sched_->next();
  // Only clients already waiting when the transmission starts catch it;
  // arrivals during the airtime wait for the next replica.
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  // Once the item is on air, the waiting clients are committed to it.
  for (const auto& r : catching) disarm_patience(r.id);
  sim_.schedule_in(
      catalog_->length(item), [this, item, catching = std::move(catching)]() {
        ++push_transmissions_;
        if (transmission_corrupted()) {
          // A corrupted broadcast needs no re-request: the item comes
          // around again next cycle, so the waiters just rejoin the
          // (re-armed) park and their delay grows by one period.
          ++corrupted_push_transmissions_;
          for (const auto& r : catching) {
            if (measured(r)) collector_->record_corrupted(r.cls);
            push_waiters_[item].push_back(r);
            arm_patience(r);
          }
        } else {
          for (const auto& r : catching) deliver(r, true);
        }
        serve_next(/*just_did_push=*/true);
      });
}

void HybridServer::start_pull() {
  note_queue_len();
  const des::SimTime now = sim_.now();
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len =
      now > 0.0 ? queue_len_area_ / now : 1.0;
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "HybridServer: start_pull on an empty pull queue; serve_next must "
        "only schedule a pull opportunity while entries are pending");
  }
  note_queue_len();
  for (const auto& r : entry->pending) disarm_patience(r.id);

  const double demand = config_.mean_bandwidth_demand > 0.0
                            ? static_cast<double>(rng::poisson(
                                  demand_eng_, config_.mean_bandwidth_demand))
                            : 0.0;
  const workload::ClassId cls = owning_class(*entry);
  if (!bandwidth_.try_acquire(cls, demand)) {
    ++blocked_transmissions_;
    for (const auto& r : entry->pending) {
      retry_count_.erase(r.id);
      if (measured(r)) collector_->record_blocked(r.cls);
      settle_one();
    }
    serve_next(/*just_did_push=*/false);
    return;
  }
  sim_.schedule_in(entry->length,
                   [this, entry = std::move(*entry), cls, demand]() {
                     bandwidth_.release(cls, demand);
                     ++pull_transmissions_;
                     if (transmission_corrupted()) {
                       ++corrupted_pull_transmissions_;
                       on_pull_corrupted(entry);
                     } else {
                       for (const auto& r : entry.pending) {
                         retry_count_.erase(r.id);
                         deliver(r, false);
                       }
                     }
                     serve_next(/*just_did_push=*/false);
                   });
}

SimResult HybridServer::run(const workload::Trace& trace) {
  // Reset run-scoped state so a server can be reused across traces,
  // including the per-run random engines (bandwidth demands, patience).
  sim_.reset();
  demand_eng_ = rng::StreamFactory(config_.seed).stream("bandwidth-demand");
  patience_eng_ = rng::StreamFactory(config_.seed).stream("patience");
  if (channel_) {
    channel_->reset(rng::StreamFactory(config_.seed).stream("fault-channel"));
  }
  pull_queue_.clear();
  patience_.clear();
  retry_count_.clear();
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  collector_ =
      std::make_unique<metrics::ClassCollector>(population_->num_classes());
  to_settle_ = trace.size();
  settled_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  blocked_transmissions_ = 0;
  corrupted_push_transmissions_ = 0;
  corrupted_pull_transmissions_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;
  warmup_time_ = config_.warmup_fraction * trace.span();

  for (const auto& request : trace.requests()) {
    sim_.schedule_at(request.arrival, [this, request]() { on_arrival(request); });
  }
  server_busy_ = true;
  if (config_.cutoff == 0) {
    server_busy_ = false;  // pure pull: sleep until the first arrival
  } else {
    sim_.schedule_at(0.0, [this]() { serve_next(/*just_did_push=*/true); });
  }
  sim_.run();
  note_queue_len();

  SimResult result;
  result.per_class = collector_->all();
  result.end_time = sim_.now();
  result.push_transmissions = push_transmissions_;
  result.pull_transmissions = pull_transmissions_;
  result.blocked_transmissions = blocked_transmissions_;
  result.corrupted_push_transmissions = corrupted_push_transmissions_;
  result.corrupted_pull_transmissions = corrupted_pull_transmissions_;
  result.mean_pull_queue_len =
      sim_.now() > 0.0 ? queue_len_area_ / sim_.now() : 0.0;
  return result;
}

}  // namespace pushpull::core
