#include "core/hybrid_server.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/sched_rules.hpp"
#include "resilience/crash.hpp"
#include "resilience/snapshot.hpp"
#include "rng/exponential.hpp"
#include "rng/splitmix64.hpp"
#include "sched/pull/aging.hpp"
#include "rng/poisson.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"

namespace pushpull::core {

HybridServer::HybridServer(const catalog::Catalog& cat,
                           const workload::ClientPopulation& pop,
                           HybridConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      demand_eng_(rng::StreamFactory(config_.seed).stream("bandwidth-demand")),
      patience_eng_(rng::StreamFactory(config_.seed).stream("patience")) {
  if (config_.cutoff > cat.size()) {
    throw std::invalid_argument("HybridServer: cutoff beyond catalog size");
  }
  if (config_.warmup_fraction < 0.0 || config_.warmup_fraction >= 1.0) {
    throw std::invalid_argument(
        "HybridServer: warmup_fraction must be in [0, 1)");
  }
  config_.fault.validate();
  config_.resilience.validate();
  if (config_.fault.enabled) {
    channel_.emplace(config_.fault.channel,
                     rng::StreamFactory(config_.seed).stream("fault-channel"));
  }
  overload_ = resilience::OverloadController(config_.resilience.overload);
  if (config_.cutoff > 0) {
    push_sched_ =
        sched::make_push_scheduler(config_.push_policy, cat, config_.cutoff);
  }
  pull_policy_ = sched::make_pull_policy(config_.pull_policy, config_.alpha);
  if (config_.aging_rate > 0.0) {
    pull_policy_ = std::make_unique<sched::AgingPolicy>(
        std::move(pull_policy_), config_.aging_rate);
  }
  if (config_.total_bandwidth > 0.0) {
    std::vector<double> fractions = config_.bandwidth_fractions;
    if (fractions.empty()) fractions.assign(pop.num_classes(), 1.0);
    if (fractions.size() != pop.num_classes()) {
      throw std::invalid_argument(
          "HybridServer: bandwidth fractions must match class count");
    }
    bandwidth_ = BandwidthManager(config_.total_bandwidth, std::move(fractions));
  }
  push_waiters_.resize(cat.size());
}

void HybridServer::note_queue_len() {
  const des::SimTime now = sim_.now();
  queue_len_area_ += static_cast<double>(pull_queue_.total_requests()) *
                     (now - queue_len_last_t_);
  queue_len_last_t_ = now;
  if (obs_) obs_->note_queue_len(pull_queue_.total_requests());
}

void HybridServer::settle_one() {
  ++settled_;
  if (settled_ == to_settle_) sim_.request_stop();
}

void HybridServer::arm_patience(const workload::Request& request) {
  if (config_.mean_patience <= 0.0) return;
  const double patience =
      rng::exponential(patience_eng_, 1.0 / config_.mean_patience);
  const des::EventId event = sim_.schedule_in(
      patience, [this, request]() { on_patience_expired(request); });
  patience_.emplace(request.id, event);
}

void HybridServer::disarm_patience(workload::RequestId request) {
  if (config_.mean_patience <= 0.0) return;
  const auto it = patience_.find(request);
  if (it == patience_.end()) return;
  sim_.cancel(it->second);
  patience_.erase(it);
}

void HybridServer::on_patience_expired(const workload::Request& request) {
  patience_.erase(request.id);
  // The ladder's widen-push can move a request between the pull queue and
  // the push park while its timer is armed, so look in both places rather
  // than trusting the static cutoff test.
  bool removed = false;
  auto& waiters = push_waiters_[request.item];
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (it->id == request.id) {
      waiters.erase(it);
      removed = true;
      break;
    }
  }
  if (!removed) {
    note_queue_len();
    removed = pull_queue_.remove_request(request.item, request.id,
                                         population_->priority(request.cls));
  }
  // The timer is disarmed whenever the request is committed or dropped, so
  // an expired timer must always find its request still waiting.
  if (!removed) {
    throw std::logic_error(
        "HybridServer: patience timer fired for request " +
        std::to_string(request.id) + " (item " +
        std::to_string(request.item) +
        ") that is no longer waiting; timers must be disarmed when a "
        "request is committed to a transmission or dropped");
  }
  retry_count_.erase(request.id);
  if (obs_) {
    ++obs_->counters.server_abandoned;
    trace_.emit<obs::Category::kQueue>(sim_.now(), "abandon", request.item,
                                       request.cls);
  }
  if (measured(request)) collector_->record_abandoned(request.cls);
  settle_one();
}

bool HybridServer::transmission_corrupted() {
  if (!channel_.has_value()) return false;
  if (obs_) {
    // Traced draw: identical engine consumption, plus state-flip events
    // and the flip counter.
    return channel_->corrupts(trace_, sim_.now(),
                              &obs_->counters.fault_flips);
  }
  return channel_->corrupts();
}

void HybridServer::shed_request(const workload::Request& request) {
  retry_count_.erase(request.id);
  if (obs_) {
    ++obs_->counters.fault_shed;
    trace_.emit<obs::Category::kQueue>(sim_.now(), "shed", request.item,
                                       request.cls);
  }
  if (measured(request)) collector_->record_shed(request.cls);
  settle_one();
}

bool HybridServer::admit_pull(const workload::Request& request) {
  const std::size_t capacity = effective_queue_capacity();
  if (capacity == 0 || pull_queue_.total_requests() < capacity) return true;
  if (effective_shed_policy() == fault::ShedPolicy::kDropTail) {
    shed_request(request);
    return false;
  }
  // Drop-lowest-priority: sacrifice the least important queued request
  // (ties prefer the youngest; an arrival no more important than the victim
  // is the one shed — see fault::LowestPriorityVictim for the exact rule).
  fault::LowestPriorityVictim<workload::Request> scan;
  for (const auto& entry : pull_queue_.entries()) {
    for (const auto& r : entry.pending) {
      scan.consider(r, population_->priority(r.cls), r.id);
    }
  }
  if (scan.arrival_yields_to(population_->priority(request.cls))) {
    shed_request(request);
    return false;
  }
  const workload::Request evicted = *scan.victim();  // copy before mutation
  disarm_patience(evicted.id);
  pull_queue_.remove_request(evicted.item, evicted.id, scan.priority());
  shed_request(evicted);
  return true;
}

void HybridServer::requeue_pull(const workload::Request& request) {
  if (down_) {
    // The uplink is dark with the server; the re-request lands once the
    // server is back.
    downtime_parked_.push_back(request);
    return;
  }
  note_queue_len();
  if (admit_pull(request)) {
    pull_queue_.add(request, population_->priority(request.cls),
                    catalog_->length(request.item),
                    catalog_->probability(request.item));
    max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
    trace_.emit<obs::Category::kQueue>(
        sim_.now(), "enter", request.item, request.cls,
        static_cast<double>(pull_queue_.total_requests()));
    arm_patience(request);
  }
  if (!server_busy_) {
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void HybridServer::on_pull_corrupted(const sched::PullEntry& entry) {
  for (const auto& r : entry.pending) {
    if (measured(r)) collector_->record_corrupted(r.cls);
    const std::uint32_t attempt = ++retry_count_[r.id];
    if (attempt > config_.fault.retry.max_retries) {
      retry_count_.erase(r.id);
      if (obs_) {
        ++obs_->counters.fault_lost;
        trace_.emit<obs::Category::kFault>(sim_.now(), "lost", r.item,
                                           attempt);
      }
      if (measured(r)) collector_->record_lost(r.cls);
      settle_one();
      continue;
    }
    if (obs_) {
      ++obs_->counters.fault_retries;
      trace_.emit<obs::Category::kFault>(sim_.now(), "retry", r.item, attempt);
    }
    if (measured(r)) collector_->record_retry(r.cls);
    sim_.schedule_in(config_.fault.retry.backoff_delay(attempt),
                     [this, r]() { requeue_pull(r); });
  }
}

void HybridServer::deliver(const workload::Request& request, bool via_push) {
  const double now = sim_.now();
  if (obs_) {
    if (via_push) {
      ++obs_->counters.server_served_push;
    } else {
      ++obs_->counters.server_served_pull;
    }
    obs_->note_response(request.cls, now - request.arrival);
  }
  if (measured(request)) {
    // parity:begin(deliver-at-end, request=r)
    sched_rules::record_delivery(*collector_, request, now, via_push);
    // parity:end
  }
  settle_one();
}

void HybridServer::on_arrival(const workload::Request& request) {
  if (obs_) ++obs_->counters.server_arrivals;
  if (measured(request)) collector_->record_arrival(request.cls);
  if (request.item < effective_cutoff()) {
    // Push item: the request is "ignored" by the scheduler (the item is on
    // the broadcast program anyway); park it to measure its delay.
    push_waiters_[request.item].push_back(request);
    trace_.emit<obs::Category::kQueue>(sim_.now(), "park_push", request.item,
                                       request.cls);
    arm_patience(request);
    return;
  }
  if (uplink_rejected(request.cls)) {
    // The ladder's admission control refuses the class at the uplink; the
    // request never enters server state.
    if (obs_) {
      ++obs_->counters.server_rejected;
      trace_.emit<obs::Category::kLadder>(sim_.now(), "reject", request.item,
                                          request.cls);
    }
    if (measured(request)) collector_->record_rejected(request.cls);
    settle_one();
    return;
  }
  if (down_) {
    // The server is dark; the request reaches it at recovery. Clients do
    // not abandon while parked (no patience armed until the queue admits
    // them).
    downtime_parked_.push_back(request);
    return;
  }
  note_queue_len();
  if (!admit_pull(request)) return;  // shed by the bounded-queue policy
  pull_queue_.add(request, population_->priority(request.cls),
                  catalog_->length(request.item),
                  catalog_->probability(request.item));
  max_queue_len_ = std::max(max_queue_len_, pull_queue_.total_requests());
  trace_.emit<obs::Category::kQueue>(
      sim_.now(), "enter", request.item, request.cls,
      static_cast<double>(pull_queue_.total_requests()));
  arm_patience(request);
  if (!server_busy_) {
    // Pure-pull server (cutoff 0) sleeping on an empty queue: wake it.
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void HybridServer::serve_next(bool just_did_push) {
  if (settled_ == to_settle_) {
    server_busy_ = false;
    return;
  }
  const double now = sim_.now();
  if (effective_cutoff() == 0) {
    if (pull_queue_.empty()) {
      server_busy_ = false;  // idle until the next pull arrival wakes us
      return;
    }
    start_pull(now);
    return;
  }
  // parity:begin(push-pull-alternation)
  // Strict alternation: one pull opportunity after every push.
  if (just_did_push && !pull_queue_.empty()) {
    start_pull(now);
  } else {
    start_push(now);
  }
  // parity:end
}

void HybridServer::start_push(double now) {
  // parity:begin(catch-at-start, disarm_patience=disarm_deadline)
  const catalog::ItemId item = push_sched_->next();
  // Only clients already waiting when the transmission starts catch it;
  // arrivals during the airtime wait for the next replica.
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  // Once the item is on air, the waiting clients are committed to it.
  for (const auto& r : catching) disarm_patience(r.id);
  // parity:end
  trace_.emit<obs::Category::kPush>(now, "tx_start", item, catching.size(),
                                    catalog_->length(item));
  if (crash_active_) inflight_push_ = InFlightPush{item, catching};
  const std::uint64_t epoch = server_epoch_;
  sim_.schedule_in(
      catalog_->length(item),
      [this, item, epoch, catching = std::move(catching)]() {
        if (epoch != server_epoch_) return;  // voided by a crash
        inflight_push_.reset();
        ++push_transmissions_;
        if (obs_) ++obs_->counters.push_tx;
        trace_.emit<obs::Category::kPush>(sim_.now(), "tx_end", item,
                                          catching.size());
        if (transmission_corrupted()) {
          // A corrupted broadcast needs no re-request: the item comes
          // around again next cycle, so the waiters just rejoin the
          // (re-armed) park and their delay grows by one period. Unless
          // the ladder shrank the item out of the broadcast program while
          // this replica was on air — then the park would strand them
          // forever (no next cycle, and the shrink migration can't see
          // passengers of an in-flight transmission), so they are pull
          // requests again and re-enter through admission control.
          // requeue_pull's wake is a no-op here (the server is busy), so
          // the serve_next below still decides with every passenger
          // queued.
          ++corrupted_push_transmissions_;
          if (obs_) ++obs_->counters.fault_corrupt_push;
          trace_.emit<obs::Category::kFault>(sim_.now(), "corrupt_push", item,
                                             catching.size());
          // parity:begin(corrupt-repark)
          const bool still_broadcast =
              sched_rules::repark_after_corruption(item, effective_cutoff());
          // parity:end
          for (const auto& r : catching) {
            if (measured(r)) collector_->record_corrupted(r.cls);
            if (still_broadcast) {
              push_waiters_[item].push_back(r);
              arm_patience(r);
            } else {
              requeue_pull(r);
            }
          }
        } else {
          for (const auto& r : catching) deliver(r, true);
        }
        serve_next(/*just_did_push=*/true);
      });
}

void HybridServer::start_pull(double now) {
  note_queue_len();
  // parity:begin(pull-priority-context)
  sched::PullContext ctx;
  ctx.now = now;
  ctx.expected_queue_len = now > 0.0 ? queue_len_area_ / now : 1.0;
  // parity:end
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "HybridServer: start_pull on an empty pull queue; serve_next must "
        "only schedule a pull opportunity while entries are pending");
  }
  note_queue_len();
  trace_.emit<obs::Category::kQueue>(
      now, "extract", entry->item, entry->pending.size(),
      static_cast<double>(pull_queue_.total_requests()));
  for (const auto& r : entry->pending) disarm_patience(r.id);

  const double demand = config_.mean_bandwidth_demand > 0.0
                            ? static_cast<double>(rng::poisson(
                                  demand_eng_, config_.mean_bandwidth_demand))
                            : 0.0;
  const workload::ClassId cls = sched_rules::owning_class(*entry);
  const bool admitted = bandwidth_.try_acquire(cls, demand);
  if (config_.resilience.overload.enabled) {
    const double alpha = config_.resilience.overload.ewma_alpha;
    blocking_ewma_[cls] = alpha * (admitted ? 0.0 : 1.0) +
                          (1.0 - alpha) * blocking_ewma_[cls];
  }
  if (!admitted) {
    ++blocked_transmissions_;
    if (obs_) {
      ++obs_->counters.blocked_tx;
      obs_->counters.blocked_requests += entry->pending.size();
      trace_.emit<obs::Category::kPull>(now, "blocked", entry->item, cls,
                                        demand);
    }
    for (const auto& r : entry->pending) {
      retry_count_.erase(r.id);
      if (measured(r)) collector_->record_blocked(r.cls);
      settle_one();
    }
    serve_next(/*just_did_push=*/false);
    return;
  }
  trace_.emit<obs::Category::kPull>(now, "tx_start", entry->item,
                                    entry->pending.size(), demand);
  if (crash_active_) inflight_pull_ = InFlightPull{*entry, cls, demand};
  const std::uint64_t epoch = server_epoch_;
  sim_.schedule_in(entry->length,
                   [this, epoch, entry = std::move(*entry), cls, demand]() {
                     if (epoch != server_epoch_) return;  // voided by a crash
                     inflight_pull_.reset();
                     bandwidth_.release(cls, demand);
                     ++pull_transmissions_;
                     if (obs_) ++obs_->counters.pull_tx;
                     trace_.emit<obs::Category::kPull>(
                         sim_.now(), "tx_end", entry.item,
                         entry.pending.size());
                     if (transmission_corrupted()) {
                       ++corrupted_pull_transmissions_;
                       if (obs_) ++obs_->counters.fault_corrupt_pull;
                       trace_.emit<obs::Category::kFault>(
                           sim_.now(), "corrupt_pull", entry.item,
                           entry.pending.size());
                       on_pull_corrupted(entry);
                     } else {
                       for (const auto& r : entry.pending) {
                         retry_count_.erase(r.id);
                         deliver(r, false);
                       }
                     }
                     serve_next(/*just_did_push=*/false);
                   });
}

// parity:begin(cutoff-boost, HybridServer=LiveServer)
std::size_t HybridServer::effective_cutoff() const noexcept {
  return sched_rules::effective_cutoff(config_.cutoff, cutoff_boost_,
                                       catalog_->size());
}
// parity:end

// parity:begin(overload-soft-cap, HybridServer=LiveServer)
std::size_t HybridServer::effective_queue_capacity() const noexcept {
  return sched_rules::effective_queue_capacity(overload_.level(),
                                               config_.fault.queue_capacity,
                                               overload_config().capacity_ref);
}

fault::ShedPolicy HybridServer::effective_shed_policy() const noexcept {
  return sched_rules::effective_shed_policy(overload_.level(),
                                            config_.fault.shed_policy);
}
// parity:end

// parity:begin(uplink-admission, HybridServer=LiveServer)
bool HybridServer::uplink_rejected(workload::ClassId cls) const noexcept {
  return sched_rules::uplink_rejected(overload_.level(), cls,
                                      population_->num_classes());
}
// parity:end

void HybridServer::on_crash() {
  if (settled_ == to_settle_) return;  // the run already drained
  const double crash_time = sim_.now();
  const double recovery_time = crash_time + config_.resilience.crash.downtime;
  ++crash_count_;
  if (obs_) {
    ++obs_->counters.crash_count;
    trace_.emit<obs::Category::kCrash>(crash_time, "crash", crash_count_, 0,
                                       config_.resilience.crash.downtime);
  }
  total_downtime_ += config_.resilience.crash.downtime;
  ++server_epoch_;  // voids the in-flight transmission-end event
  down_ = true;
  server_busy_ = false;
  // Recovery is scheduled before any storm re-request so that, at equal
  // instants, the server is back up before the first re-request lands.
  sim_.schedule_at(recovery_time, [this]() { on_recovered(); });

  // Clients committed to the on-air broadcast never got the item; their
  // state is client-side, so they simply rejoin the park and wait for the
  // next cycle after recovery.
  if (inflight_push_.has_value()) {
    for (const auto& r : inflight_push_->catching) {
      push_waiters_[inflight_push_->item].push_back(r);
      arm_patience(r);
    }
    inflight_push_.reset();
  }

  std::vector<workload::Request> storm;
  // The on-air pull transmission is lost with the server; its bandwidth
  // grant must be returned to the pool (the end event will never fire).
  if (inflight_pull_.has_value()) {
    bandwidth_.release(inflight_pull_->cls, inflight_pull_->demand);
    for (const auto& r : inflight_pull_->entry.pending) storm.push_back(r);
    inflight_pull_.reset();
  }

  // Queue state is server-side and dies with it. Warm recovery restores
  // the requests covered by the latest snapshot (decoded through the
  // versioned codec — the same path a process restart would take); cold
  // recovery loses everything, including the broadcast-cycle position.
  std::unordered_set<std::uint64_t> restored;
  if (config_.resilience.crash.recovery == resilience::RecoveryMode::kWarm &&
      !latest_snapshot_.empty()) {
    const resilience::QueueSnapshot snap =
        resilience::decode_snapshot(latest_snapshot_, snapshot_fingerprint_);
    for (const std::uint64_t id : snap.queued) restored.insert(id);
  } else if (config_.resilience.crash.recovery ==
             resilience::RecoveryMode::kCold) {
    if (push_sched_) push_sched_->reset();
  }
  std::vector<workload::Request> wiped;
  for (const auto& entry : pull_queue_.entries()) {
    for (const auto& r : entry.pending) {
      if (!restored.contains(r.id)) wiped.push_back(r);
    }
  }
  note_queue_len();
  for (const auto& r : wiped) {
    disarm_patience(r.id);
    pull_queue_.remove_request(r.item, r.id, population_->priority(r.cls));
    storm.push_back(r);
  }

  storm_rerequests_ += storm.size();
  largest_storm_ = std::max(largest_storm_, storm.size());
  if (obs_) {
    obs_->counters.crash_storm += storm.size();
    trace_.emit<obs::Category::kCrash>(crash_time, "storm", storm.size(),
                                       crash_count_);
  }
  for (const auto& r : storm) storm_rerequest(r, crash_time, recovery_time);
}

void HybridServer::storm_rerequest(const workload::Request& request,
                                   double crash_time, double recovery_time) {
  if (measured(request)) collector_->record_stormed(request.cls);
  const double spread = config_.resilience.crash.storm_spread;
  // At zero spread no draw is consumed, so a deliberately synchronized
  // storm replays identically with or without the jitter stream advanced.
  const double jitter =
      spread > 0.0 ? rng::uniform(*storm_eng_, 0.0, spread) : 0.0;
  const double when =
      recovery_time + config_.resilience.crash.rerequest_timeout + jitter;
  sim_.schedule_at(when, [this, request, crash_time]() {
    recovery_latency_.add(sim_.now() - crash_time);
    requeue_pull(request);
  });
}

void HybridServer::on_recovered() {
  down_ = false;
  trace_.emit<obs::Category::kCrash>(sim_.now(), "recover",
                                     downtime_parked_.size(), crash_count_);
  // Requests that arrived (or matured from retry backoffs) while the
  // server was dark land now, in arrival order.
  std::vector<workload::Request> parked = std::move(downtime_parked_);
  downtime_parked_.clear();
  for (const auto& r : parked) requeue_pull(r);
  if (!server_busy_ && settled_ < to_settle_) {
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void HybridServer::take_snapshot() {
  if (settled_ == to_settle_) return;
  if (!down_) {
    resilience::QueueSnapshot snap;
    snap.time = sim_.now();
    for (const auto& entry : pull_queue_.entries()) {
      for (const auto& r : entry.pending) snap.queued.push_back(r.id);
    }
    latest_snapshot_ = resilience::encode_snapshot(snap, snapshot_fingerprint_);
    if (obs_) {
      ++obs_->counters.crash_snapshots;
      trace_.emit<obs::Category::kCrash>(sim_.now(), "snapshot",
                                         snap.queued.size());
    }
  }
  sim_.schedule_in(config_.resilience.crash.snapshot_interval,
                   [this]() { take_snapshot(); });
}

void HybridServer::evaluate_overload() {
  if (settled_ == to_settle_) return;
  // parity:begin(ladder-occupancy)
  const double occupancy = sched_rules::ladder_occupancy(
      pull_queue_.total_requests(), push_waiters_, config_.cutoff,
      effective_cutoff(), config_.fault.queue_capacity,
      overload_config().capacity_ref);
  const double worst_ewma = sched_rules::worst_blocking_ewma(blocking_ewma_);
  // parity:end
  const resilience::OverloadLevel before = overload_.level();
  const resilience::OverloadLevel after =
      obs_ ? overload_.update(sim_.now(), occupancy, worst_ewma, trace_)
           : overload_.update(sim_.now(), occupancy, worst_ewma);
  if (after != before) {
    if (obs_) ++obs_->counters.ladder_transitions;
    apply_overload_level(after);
  }
  sim_.schedule_in(config_.resilience.overload.eval_interval,
                   [this]() { evaluate_overload(); });
}

void HybridServer::apply_overload_level(resilience::OverloadLevel level) {
  // Shedding policy and soft cap are consulted on the fly by
  // effective_shed_policy()/effective_queue_capacity(); the only action
  // with state to migrate is the widen-push cutoff boost.
  const std::size_t boost =
      level >= resilience::OverloadLevel::kWidenPush
          ? config_.resilience.overload.cutoff_step
          : 0;
  if (boost != cutoff_boost_) apply_cutoff_boost(boost);
}

void HybridServer::apply_cutoff_boost(std::size_t boost) {
  const std::size_t old_cut = effective_cutoff();
  cutoff_boost_ = boost;
  const std::size_t new_cut = effective_cutoff();
  if (new_cut == old_cut) return;
  if (obs_) {
    ++obs_->counters.cutoff_boosts;
    trace_.emit<obs::Category::kCutoff>(sim_.now(), "boost", old_cut, new_cut);
  }
  push_sched_ = new_cut > 0 ? sched::make_push_scheduler(config_.push_policy,
                                                         *catalog_, new_cut)
                            : nullptr;
  if (new_cut > old_cut) {
    // Widened: the hottest pull items now ride the broadcast. Their queued
    // requests become push waiters; patience timers stay armed (the client
    // is still waiting for the same item).
    note_queue_len();
    for (std::size_t item = old_cut; item < new_cut; ++item) {
      auto entry = pull_queue_.extract(static_cast<catalog::ItemId>(item));
      if (!entry.has_value()) continue;
      for (const auto& r : entry->pending) push_waiters_[r.item].push_back(r);
    }
  } else {
    // Shrunk back: parked waiters of de-widened items are pull requests
    // again and re-enter through admission control.
    for (std::size_t item = new_cut; item < old_cut; ++item) {
      std::vector<workload::Request> waiters = std::move(push_waiters_[item]);
      push_waiters_[item].clear();
      for (const auto& r : waiters) {
        disarm_patience(r.id);
        requeue_pull(r);
      }
    }
  }
  if (!server_busy_ && !down_ && settled_ < to_settle_ && new_cut > 0) {
    // A pure-pull server asleep on an empty queue now has a broadcast
    // program to run.
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

SimResult HybridServer::run(const workload::Trace& trace) {
  // Reset run-scoped state so a server can be reused across traces,
  // including the per-run random engines (bandwidth demands, patience).
  sim_.reset();
  demand_eng_ = rng::StreamFactory(config_.seed).stream("bandwidth-demand");
  patience_eng_ = rng::StreamFactory(config_.seed).stream("patience");
  if (channel_) {
    channel_->reset(rng::StreamFactory(config_.seed).stream("fault-channel"));
  }
  pull_queue_.clear();
  patience_.clear();
  retry_count_.clear();
  // Observability: created fresh per run (after the queue clear above, so
  // leftover state never pollutes the new tallies), torn down to nothing
  // when disabled. The tracer handle is inert without an observer.
  config_.obs.validate();
  if (config_.obs.enabled) {
    obs_ = std::make_unique<obs::RunObserver>(config_.obs,
                                              population_->num_classes());
    trace_ = obs_->tracer();
  } else {
    obs_.reset();
    trace_ = obs::Tracer{};
  }
  sim_.set_tracer(trace_);
  pull_queue_.set_counters(obs_ ? obs_->queue_counters() : nullptr);
  des_scheduled_base_ = sim_.scheduled_events();
  des_dispatched_base_ = sim_.dispatched_events();
  des_cancelled_base_ = sim_.cancelled_events();
  if (cutoff_boost_ > 0) {
    // Undo a widen-push left over from the previous run.
    cutoff_boost_ = 0;
    push_sched_ = config_.cutoff > 0
                      ? sched::make_push_scheduler(config_.push_policy,
                                                   *catalog_, config_.cutoff)
                      : nullptr;
  }
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  collector_ =
      std::make_unique<metrics::ClassCollector>(population_->num_classes());
  to_settle_ = trace.size();
  settled_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  blocked_transmissions_ = 0;
  corrupted_push_transmissions_ = 0;
  corrupted_pull_transmissions_ = 0;
  queue_len_area_ = 0.0;
  queue_len_last_t_ = 0.0;
  max_queue_len_ = 0;
  warmup_time_ = config_.warmup_fraction * trace.span();

  // Resilience state. With crashes disabled and the ladder off nothing
  // below derives a stream or schedules an event, keeping the fault-free
  // path bit-identical.
  const resilience::CrashConfig& crash = config_.resilience.crash;
  down_ = false;
  server_epoch_ = 0;
  inflight_push_.reset();
  inflight_pull_.reset();
  downtime_parked_.clear();
  storm_eng_.reset();
  latest_snapshot_.clear();
  crash_count_ = 0;
  total_downtime_ = 0.0;
  storm_rerequests_ = 0;
  largest_storm_ = 0;
  recovery_latency_ = metrics::Welford{};
  overload_.reset();
  blocking_ewma_.assign(population_->num_classes(), 0.0);
  crash_active_ = crash.enabled && crash.rate > 0.0;
  if (crash_active_) {
    storm_eng_ = rng::StreamFactory(config_.seed).stream("crash-storm");
    snapshot_fingerprint_ = rng::SplitMix64::mix(
        config_.seed ^
        rng::SplitMix64::mix((static_cast<std::uint64_t>(catalog_->size())
                              << 32) ^
                             population_->num_classes() ^
                             (static_cast<std::uint64_t>(config_.cutoff)
                              << 16)));
    const resilience::CrashSchedule schedule = resilience::CrashSchedule::
        poisson(crash, trace.span(),
                rng::StreamFactory(config_.seed).stream("crash-schedule"));
    for (const double t : schedule.times()) {
      sim_.schedule_at(t, [this]() { on_crash(); });
    }
    if (crash.recovery == resilience::RecoveryMode::kWarm &&
        !schedule.empty()) {
      sim_.schedule_at(crash.snapshot_interval, [this]() { take_snapshot(); });
    }
  }
  if (config_.resilience.overload.enabled) {
    sim_.schedule_at(config_.resilience.overload.eval_interval,
                     [this]() { evaluate_overload(); });
  }

  for (const auto& request : trace.requests()) {
    sim_.schedule_at(request.arrival, [this, request]() { on_arrival(request); });
  }
  server_busy_ = true;
  if (config_.cutoff == 0) {
    server_busy_ = false;  // pure pull: sleep until the first arrival
  } else {
    sim_.schedule_at(0.0, [this]() { serve_next(/*just_did_push=*/true); });
  }
  sim_.run();
  note_queue_len();
  if (obs_) {
    obs_->counters.des_scheduled =
        sim_.scheduled_events() - des_scheduled_base_;
    obs_->counters.des_dispatched =
        sim_.dispatched_events() - des_dispatched_base_;
    obs_->counters.des_cancelled =
        sim_.cancelled_events() - des_cancelled_base_;
  }

  SimResult result;
  result.per_class = collector_->all();
  result.end_time = sim_.now();
  result.push_transmissions = push_transmissions_;
  result.pull_transmissions = pull_transmissions_;
  result.blocked_transmissions = blocked_transmissions_;
  result.corrupted_push_transmissions = corrupted_push_transmissions_;
  result.corrupted_pull_transmissions = corrupted_pull_transmissions_;
  result.mean_pull_queue_len =
      sim_.now() > 0.0 ? queue_len_area_ / sim_.now() : 0.0;
  result.max_pull_queue_len = max_queue_len_;
  result.crashes = crash_count_;
  result.total_downtime = total_downtime_;
  result.storm_rerequests = storm_rerequests_;
  result.largest_storm = largest_storm_;
  result.recovery_latency = recovery_latency_;
  // parity:begin(overload-transition-export, result=report)
  sched_rules::export_overload(result, overload_);
  // parity:end
  result.event_order_violations = sim_.order_violations();
  return result;
}

}  // namespace pushpull::core
