#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/config.hpp"
#include "core/pull_queue.hpp"
#include "core/result.hpp"
#include "des/simulator.hpp"
#include "fault/channel.hpp"
#include "metrics/class_stats.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace pushpull::core {

/// The paper's hybrid scheduling server (Fig. 1 pseudo-code), simulated
/// with discrete events.
///
/// Behavior per the paper, §3:
///  * items [0, K) are broadcast cyclically by the push scheduler; client
///    requests for them are ignored by the queue (the client simply waits
///    for the item to come around) but tracked here to measure their delay;
///  * requests for items [K, D) enter the pull queue, aggregated per item
///    with arrival time, request count R_i and summed client priority Q_i;
///  * after every push transmission, if the pull queue is non-empty the
///    entry with the maximum importance factor is extracted and transmitted;
///  * a pull transmission first draws a Poisson bandwidth demand and asks
///    the service class's bandwidth pool to admit it; on rejection the item
///    and all its pending requests are dropped (blocking);
///  * delivery is at transmission *end*, and only requests that arrived
///    before the transmission started are satisfied by it.
///
/// On top of the paper's model the server carries an optional
/// fault-injection layer (config.fault):
///  * every transmission end samples a Gilbert–Elliott burst-error channel;
///    a corrupted *push* item is simply caught on its next broadcast cycle,
///    while a corrupted *pull* item triggers a client re-request after an
///    exponential backoff, bounded by `fault.retry.max_retries` attempts
///    (then the request counts as lost);
///  * a bounded pull queue (`fault.queue_capacity`) sheds requests under
///    overload, by drop-tail or by evicting the lowest-priority client.
///
/// The server is deterministic given (catalog, population, config, trace);
/// the fault channel draws from its own named stream, so enabling it never
/// perturbs the bandwidth-demand or patience draws.
class HybridServer {
 public:
  HybridServer(const catalog::Catalog& cat,
               const workload::ClientPopulation& pop, HybridConfig config);

  /// Simulates the full trace and runs until every request is delivered or
  /// blocked, then reports per-class statistics.
  [[nodiscard]] SimResult run(const workload::Trace& trace);

  [[nodiscard]] const HybridConfig& config() const noexcept { return config_; }

 private:
  enum class Phase { kPush, kPull };

  void on_arrival(const workload::Request& request);
  void serve_next(bool just_did_push);
  void start_push();
  void start_pull();
  void deliver(const workload::Request& request, bool via_push);
  void settle_one();
  void note_queue_len();
  void arm_patience(const workload::Request& request);
  void disarm_patience(workload::RequestId request);
  void on_patience_expired(const workload::Request& request);

  /// Samples the fault channel for one finished transmission; always false
  /// when fault injection is disabled (and consumes no randomness).
  [[nodiscard]] bool transmission_corrupted();
  /// Handles a corrupted pull transmission: schedules bounded-backoff
  /// re-requests and settles requests that exhausted their retries.
  void on_pull_corrupted(const sched::PullEntry& entry);
  /// Re-enters a request into the pull queue after its backoff, waking the
  /// server if it went idle in the meantime.
  void requeue_pull(const workload::Request& request);
  /// Admission control of the bounded pull queue. Returns true when
  /// `request` may enter (possibly after evicting a lower-priority victim);
  /// false when it was shed — in that case the request is already settled.
  [[nodiscard]] bool admit_pull(const workload::Request& request);
  /// Settles a request removed by admission control.
  void shed_request(const workload::Request& request);

  [[nodiscard]] bool measured(const workload::Request& request) const noexcept {
    return request.arrival >= warmup_time_;
  }

  /// The class whose bandwidth pool a pull transmission draws from: the most
  /// important (lowest id) class with a pending request for the item.
  [[nodiscard]] static workload::ClassId owning_class(
      const sched::PullEntry& entry) noexcept;

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  HybridConfig config_;

  des::Simulator sim_;
  PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  BandwidthManager bandwidth_;
  rng::Xoshiro256ss demand_eng_;
  rng::Xoshiro256ss patience_eng_;
  // Present iff config_.fault.enabled; samples one state transition and one
  // corruption draw per downlink transmission.
  std::optional<fault::GilbertElliottChannel> channel_;

  std::vector<std::vector<workload::Request>> push_waiters_;
  // Pending abandonment timers, keyed by request id; a timer is disarmed
  // the moment its request is committed to a transmission (or dropped).
  std::unordered_map<workload::RequestId, des::EventId> patience_;
  // Re-requests already issued per pull request, keyed by request id; an
  // entry exists only while the request has suffered >= 1 corruption.
  std::unordered_map<workload::RequestId, std::uint32_t> retry_count_;
  std::unique_ptr<metrics::ClassCollector> collector_;

  // Run-scoped state.
  des::SimTime warmup_time_ = 0.0;
  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  bool server_busy_ = false;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  std::uint64_t blocked_transmissions_ = 0;
  std::uint64_t corrupted_push_transmissions_ = 0;
  std::uint64_t corrupted_pull_transmissions_ = 0;
  // Time-weighted pull-queue-length integral (for E[L_pull]).
  double queue_len_area_ = 0.0;
  des::SimTime queue_len_last_t_ = 0.0;
};

}  // namespace pushpull::core
