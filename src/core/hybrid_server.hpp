#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/bandwidth_manager.hpp"
#include "core/config.hpp"
#include "core/pull_queue.hpp"
#include "core/result.hpp"
#include "des/simulator.hpp"
#include "fault/channel.hpp"
#include "metrics/class_stats.hpp"
#include "metrics/welford.hpp"
#include "obs/observer.hpp"
#include "resilience/overload.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"
#include "workload/trace.hpp"

namespace pushpull::core {

/// The paper's hybrid scheduling server (Fig. 1 pseudo-code), simulated
/// with discrete events.
///
/// Behavior per the paper, §3:
///  * items [0, K) are broadcast cyclically by the push scheduler; client
///    requests for them are ignored by the queue (the client simply waits
///    for the item to come around) but tracked here to measure their delay;
///  * requests for items [K, D) enter the pull queue, aggregated per item
///    with arrival time, request count R_i and summed client priority Q_i;
///  * after every push transmission, if the pull queue is non-empty the
///    entry with the maximum importance factor is extracted and transmitted;
///  * a pull transmission first draws a Poisson bandwidth demand and asks
///    the service class's bandwidth pool to admit it; on rejection the item
///    and all its pending requests are dropped (blocking);
///  * delivery is at transmission *end*, and only requests that arrived
///    before the transmission started are satisfied by it.
///
/// On top of the paper's model the server carries an optional
/// fault-injection layer (config.fault):
///  * every transmission end samples a Gilbert–Elliott burst-error channel;
///    a corrupted *push* item is simply caught on its next broadcast cycle,
///    while a corrupted *pull* item triggers a client re-request after an
///    exponential backoff, bounded by `fault.retry.max_retries` attempts
///    (then the request counts as lost);
///  * a bounded pull queue (`fault.queue_capacity`) sheds requests under
///    overload, by drop-tail or by evicting the lowest-priority client.
///
/// And an optional resilience layer (config.resilience):
///  * a seeded crash schedule kills the server at simulated instants; an
///    in-flight transmission is voided, the pull queue's server-side state
///    is wiped (cold) or restored from the latest periodic snapshot (warm),
///    and the clients whose work was lost re-request in a storm after the
///    recovery plus a per-client timeout/jitter. Clients parked for push
///    items simply keep waiting (their state is client-side); a cold
///    restart additionally forgets the broadcast-cycle position;
///  * an overload degradation ladder watches pull-queue occupancy and the
///    per-class blocking EWMA and escalates normal → shed-low-priority →
///    widen-push → admission-control → brownout with hysteresis, logging
///    every move. Widening temporarily grows the push cutoff, admission
///    control rejects the least important class(es) at the uplink.
///
/// The server is deterministic given (catalog, population, config, trace);
/// the fault channel, crash schedule and storm jitter each draw from their
/// own named stream, so enabling any of them never perturbs the
/// bandwidth-demand or patience draws — and with the whole resilience layer
/// disabled the output is bit-identical to builds that predate it.
class HybridServer {
 public:
  HybridServer(const catalog::Catalog& cat,
               const workload::ClientPopulation& pop, HybridConfig config);

  /// Simulates the full trace and runs until every request is delivered or
  /// blocked, then reports per-class statistics.
  [[nodiscard]] SimResult run(const workload::Trace& trace);

  [[nodiscard]] const HybridConfig& config() const noexcept { return config_; }

  /// Observability report of the last run(): trace window, counters and
  /// histograms. Empty (enabled=false) unless config().obs.enabled. Valid
  /// until the next run() resets the observer.
  [[nodiscard]] obs::ObsReport obs_report() const {
    return obs_ ? obs_->report() : obs::ObsReport{};
  }

 private:
  enum class Phase { kPush, kPull };

  void on_arrival(const workload::Request& request);
  void serve_next(bool just_did_push);
  void start_push(double now);
  void start_pull(double now);
  void deliver(const workload::Request& request, bool via_push);
  void settle_one();
  void note_queue_len();
  void arm_patience(const workload::Request& request);
  void disarm_patience(workload::RequestId request);
  void on_patience_expired(const workload::Request& request);

  /// Samples the fault channel for one finished transmission; always false
  /// when fault injection is disabled (and consumes no randomness).
  [[nodiscard]] bool transmission_corrupted();
  /// Handles a corrupted pull transmission: schedules bounded-backoff
  /// re-requests and settles requests that exhausted their retries.
  void on_pull_corrupted(const sched::PullEntry& entry);
  /// Re-enters a request into the pull queue after its backoff, waking the
  /// server if it went idle in the meantime.
  void requeue_pull(const workload::Request& request);
  /// Admission control of the bounded pull queue. Returns true when
  /// `request` may enter (possibly after evicting a lower-priority victim);
  /// false when it was shed — in that case the request is already settled.
  [[nodiscard]] bool admit_pull(const workload::Request& request);
  /// Settles a request removed by admission control.
  void shed_request(const workload::Request& request);

  // --- resilience layer ---------------------------------------------------

  /// Push cutoff currently in force: the configured K plus the ladder's
  /// widen-push boost, clamped to the catalog.
  [[nodiscard]] std::size_t effective_cutoff() const noexcept;
  /// Pull-queue capacity in force (hard fault cap, or the ladder's soft cap
  /// at shed-low-priority and above; 0 = unbounded).
  [[nodiscard]] std::size_t effective_queue_capacity() const noexcept;
  /// Shed policy in force (the ladder forces drop-lowest-priority at
  /// shed-low-priority and above).
  [[nodiscard]] fault::ShedPolicy effective_shed_policy() const noexcept;
  /// True when the ladder's admission control refuses this class.
  [[nodiscard]] bool uplink_rejected(workload::ClassId cls) const noexcept;
  /// The ladder's configuration block (the live engine keeps it at a
  /// different config path; this accessor is what lets the parity regions
  /// stay token-identical).
  [[nodiscard]] const resilience::OverloadConfig& overload_config()
      const noexcept {
    return config_.resilience.overload;
  }

  /// The server dies: void the in-flight transmission, wipe (cold) or
  /// restore (warm) the queue, storm the lost clients, schedule recovery.
  void on_crash();
  void on_recovered();
  /// One client whose pending work a crash wiped: re-requests at
  /// `recovery + rerequest_timeout + U(0, storm_spread)`.
  void storm_rerequest(const workload::Request& request, double crash_time,
                       double recovery_time);
  /// Periodic warm-recovery snapshot of the pull queue (versioned codec).
  void take_snapshot();
  /// Periodic ladder evaluation; applies level actions on transitions.
  void evaluate_overload();
  void apply_overload_level(resilience::OverloadLevel level);
  /// Rebuilds the push scheduler for a new widen-push boost and migrates
  /// queued/parked requests across the moved cutoff.
  void apply_cutoff_boost(std::size_t boost);

  [[nodiscard]] bool measured(const workload::Request& request) const noexcept {
    return request.arrival >= warmup_time_;
  }

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  HybridConfig config_;

  des::Simulator sim_;
  PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  BandwidthManager bandwidth_;
  rng::Xoshiro256ss demand_eng_;
  rng::Xoshiro256ss patience_eng_;
  // Present iff config_.fault.enabled; samples one state transition and one
  // corruption draw per downlink transmission.
  std::optional<fault::GilbertElliottChannel> channel_;

  std::vector<std::vector<workload::Request>> push_waiters_;
  // Pending abandonment timers, keyed by request id; a timer is disarmed
  // the moment its request is committed to a transmission (or dropped).
  std::unordered_map<workload::RequestId, des::EventId> patience_;
  // Re-requests already issued per pull request, keyed by request id; an
  // entry exists only while the request has suffered >= 1 corruption.
  std::unordered_map<workload::RequestId, std::uint32_t> retry_count_;
  std::unique_ptr<metrics::ClassCollector> collector_;

  // Run-scoped state.
  des::SimTime warmup_time_ = 0.0;
  std::uint64_t to_settle_ = 0;
  std::uint64_t settled_ = 0;
  bool server_busy_ = false;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  std::uint64_t blocked_transmissions_ = 0;
  std::uint64_t corrupted_push_transmissions_ = 0;
  std::uint64_t corrupted_pull_transmissions_ = 0;
  // Time-weighted pull-queue-length integral (for E[L_pull]).
  double queue_len_area_ = 0.0;
  des::SimTime queue_len_last_t_ = 0.0;
  std::size_t max_queue_len_ = 0;

  // --- resilience state ---------------------------------------------------
  // True while a non-empty crash schedule is in force this run; in-flight
  // transmissions are tracked (and the storm engine derived) only then, so
  // the fault-free path stays untouched.
  bool crash_active_ = false;
  bool down_ = false;
  // Bumped by every crash; a transmission-end event whose captured epoch is
  // stale was voided by a crash and must not deliver.
  std::uint64_t server_epoch_ = 0;
  // The transmission on air, kept here so a crash can unwind it. At most
  // one exists at a time (the downlink is serial).
  struct InFlightPush {
    catalog::ItemId item = 0;
    std::vector<workload::Request> catching;
  };
  struct InFlightPull {
    sched::PullEntry entry;
    workload::ClassId cls = 0;
    double demand = 0.0;
  };
  std::optional<InFlightPush> inflight_push_;
  std::optional<InFlightPull> inflight_pull_;
  // Pull work that arrived (or matured from a retry backoff) while the
  // server was dark; drained at recovery.
  std::vector<workload::Request> downtime_parked_;
  // Storm jitter; derived iff crash_active_ (own named stream).
  std::optional<rng::Xoshiro256ss> storm_eng_;
  std::uint64_t snapshot_fingerprint_ = 0;
  // Latest encoded warm-recovery snapshot ("" = none taken yet).
  std::string latest_snapshot_;
  std::uint64_t crash_count_ = 0;
  double total_downtime_ = 0.0;
  std::uint64_t storm_rerequests_ = 0;
  std::uint64_t largest_storm_ = 0;
  metrics::Welford recovery_latency_;

  // --- observability ------------------------------------------------------
  // Present iff config_.obs.enabled for the current run. Strictly
  // write-only from the simulation's perspective: nothing below ever reads
  // observer state, so traced and untraced runs are bit-identical.
  std::unique_ptr<obs::RunObserver> obs_;
  // Inert (null sink) when obs_ is absent; every emission then costs one
  // branch.
  obs::Tracer trace_;
  // des kernel counter baselines at run start (the kernel keeps lifetime
  // totals; the report wants this run's deltas).
  std::uint64_t des_scheduled_base_ = 0;
  std::uint64_t des_dispatched_base_ = 0;
  std::uint64_t des_cancelled_base_ = 0;

  resilience::OverloadController overload_;
  // Per-class blocking EWMA (ladder input); updated per pull service
  // attempt, only while the ladder is enabled.
  std::vector<double> blocking_ewma_;
  // Extra push-cutoff items granted by widen-push (0 at normal).
  std::size_t cutoff_boost_ = 0;
};

}  // namespace pushpull::core
