#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/pull_queue.hpp"
#include "des/simulator.hpp"
#include "metrics/class_stats.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sched/pull/policy.hpp"
#include "sched/push/push_scheduler.hpp"
#include "workload/population.hpp"

namespace pushpull::core {

/// Configuration of a closed-loop run.
struct ClosedLoopConfig {
  /// The paper's C: number of clients cycling think → request → wait.
  std::size_t num_clients = 50;
  /// Rate of each client's exponential think time (mean 1/rate between a
  /// delivery and the client's next request).
  double think_rate = 0.05;
  std::size_t cutoff = 0;
  double alpha = 0.5;
  sched::PullPolicyKind pull_policy = sched::PullPolicyKind::kImportance;
  sched::PushPolicyKind push_policy = sched::PushPolicyKind::kFlat;
  /// Virtual run length and the fraction of it discarded as warm-up.
  double horizon = 20000.0;
  double warmup_fraction = 0.1;
  std::uint64_t seed = 1;
};

/// Outcome of a closed-loop run.
struct ClosedLoopResult {
  std::vector<metrics::ClassStats> per_class;
  des::SimTime end_time = 0.0;
  std::uint64_t push_transmissions = 0;
  std::uint64_t pull_transmissions = 0;
  /// Deliveries per broadcast unit over the measured window.
  double throughput = 0.0;

  [[nodiscard]] metrics::ClassStats overall() const {
    metrics::ClassStats total;
    for (const auto& s : per_class) total.merge_counters(s);
    return total;
  }
  [[nodiscard]] double mean_wait(workload::ClassId cls) const {
    return per_class[cls].wait.mean();
  }
};

/// Closed-loop hybrid system: a *finite* population of C clients, each
/// alternating between thinking and waiting for one outstanding request —
/// the population model the paper's §4.1 analysis assumes ("let C ...
/// represent the maximum number of clients") but its open-loop simulation
/// never exercises. Closed loops self-limit: a slow server suppresses the
/// offered load instead of growing an unbounded queue, so throughput
/// saturates at the channel capacity as C grows and delay rises smoothly
/// rather than diverging.
///
/// Clients are assigned classes by the population's shares (round-robin by
/// cumulative share, deterministic) and keep them for the whole run.
class ClosedLoopServer {
 public:
  ClosedLoopServer(const catalog::Catalog& cat,
                   const workload::ClientPopulation& pop,
                   ClosedLoopConfig config);

  [[nodiscard]] ClosedLoopResult run();

 private:
  struct Client {
    workload::ClassId cls = 0;
  };

  void think_then_request(std::size_t client);
  void issue_request(std::size_t client);
  void serve_next(bool just_did_push);
  void start_push();
  void start_pull();
  void deliver(const workload::Request& request, bool via_push);

  [[nodiscard]] bool measured(des::SimTime at) const noexcept {
    return at >= config_.warmup_fraction * config_.horizon;
  }

  const catalog::Catalog* catalog_;
  const workload::ClientPopulation* population_;
  ClosedLoopConfig config_;

  des::Simulator sim_;
  PullQueue pull_queue_;
  std::unique_ptr<sched::PushScheduler> push_sched_;
  std::unique_ptr<sched::PullPolicy> pull_policy_;
  rng::Xoshiro256ss think_eng_;
  rng::Xoshiro256ss item_eng_;

  std::vector<Client> clients_;
  // owners_[request id] = issuing client; ids are dense per run.
  std::vector<std::size_t> owners_;
  std::vector<std::vector<workload::Request>> push_waiters_;
  std::unique_ptr<metrics::ClassCollector> collector_;

  bool server_busy_ = false;
  workload::RequestId next_request_id_ = 0;
  std::uint64_t push_transmissions_ = 0;
  std::uint64_t pull_transmissions_ = 0;
  std::uint64_t measured_served_ = 0;
};

}  // namespace pushpull::core
