#include "core/closed_loop.hpp"

#include <stdexcept>
#include <string>

#include "rng/exponential.hpp"
#include "rng/stream.hpp"

namespace pushpull::core {

ClosedLoopServer::ClosedLoopServer(const catalog::Catalog& cat,
                                   const workload::ClientPopulation& pop,
                                   ClosedLoopConfig config)
    : catalog_(&cat),
      population_(&pop),
      config_(std::move(config)),
      think_eng_(rng::StreamFactory(config_.seed).stream("think")),
      item_eng_(rng::StreamFactory(config_.seed).stream("items")) {
  if (config_.num_clients == 0) {
    throw std::invalid_argument("ClosedLoopServer: need at least one client");
  }
  if (config_.think_rate <= 0.0) {
    throw std::invalid_argument("ClosedLoopServer: think rate must be > 0");
  }
  if (config_.cutoff > cat.size()) {
    throw std::invalid_argument("ClosedLoopServer: cutoff beyond catalog");
  }
  if (config_.horizon <= 0.0) {
    throw std::invalid_argument("ClosedLoopServer: horizon must be > 0");
  }
  if (config_.warmup_fraction < 0.0 || config_.warmup_fraction >= 1.0) {
    throw std::invalid_argument(
        "ClosedLoopServer: warmup fraction must be in [0, 1)");
  }
  if (config_.cutoff > 0) {
    push_sched_ =
        sched::make_push_scheduler(config_.push_policy, cat, config_.cutoff);
  }
  pull_policy_ = sched::make_pull_policy(config_.pull_policy, config_.alpha);
  push_waiters_.resize(cat.size());

  // Deterministic class assignment by cumulative population share.
  clients_.resize(config_.num_clients);
  double cumulative = 0.0;
  workload::ClassId cls = 0;
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    const double position = (static_cast<double>(c) + 0.5) /
                            static_cast<double>(config_.num_clients);
    while (cls + 1 < population_->num_classes() &&
           position >= cumulative + population_->share(cls)) {
      cumulative += population_->share(cls);
      ++cls;
    }
    clients_[c].cls = cls;
  }
}

void ClosedLoopServer::think_then_request(std::size_t client) {
  const double think = rng::exponential(think_eng_, config_.think_rate);
  sim_.schedule_in(think, [this, client]() { issue_request(client); });
}

void ClosedLoopServer::issue_request(std::size_t client) {
  workload::Request request;
  request.id = next_request_id_++;
  request.item = catalog_->sample(item_eng_);
  request.cls = clients_[client].cls;
  request.arrival = sim_.now();
  // The request id doubles as the key back to its client: ids are dense,
  // so a vector indexed by id works as the owner map.
  owners_.push_back(client);
  if (owners_.size() != request.id + 1) {
    throw std::logic_error(
        "ClosedLoopServer: request ids are not dense (id " +
        std::to_string(request.id) + ", owners " +
        std::to_string(owners_.size()) + ")");
  }

  if (measured(request.arrival)) collector_->record_arrival(request.cls);
  if (request.item < config_.cutoff) {
    push_waiters_[request.item].push_back(request);
  } else {
    pull_queue_.add(request, population_->priority(request.cls),
                    catalog_->length(request.item),
                    catalog_->probability(request.item));
  }
  if (!server_busy_) {
    server_busy_ = true;
    serve_next(/*just_did_push=*/true);
  }
}

void ClosedLoopServer::deliver(const workload::Request& request,
                               bool via_push) {
  if (measured(request.arrival)) {
    collector_->record_served(request.cls, sim_.now() - request.arrival,
                              via_push, sim_.now());
    ++measured_served_;
  }
  think_then_request(owners_[request.id]);
}

void ClosedLoopServer::serve_next(bool just_did_push) {
  if (config_.cutoff == 0) {
    if (pull_queue_.empty()) {
      server_busy_ = false;
      return;
    }
    start_pull();
    return;
  }
  if (just_did_push && !pull_queue_.empty()) {
    start_pull();
  } else {
    start_push();
  }
}

void ClosedLoopServer::start_push() {
  const catalog::ItemId item = push_sched_->next();
  std::vector<workload::Request> catching = std::move(push_waiters_[item]);
  push_waiters_[item].clear();
  sim_.schedule_in(catalog_->length(item),
                   [this, catching = std::move(catching)]() {
                     ++push_transmissions_;
                     for (const auto& r : catching) deliver(r, true);
                     serve_next(/*just_did_push=*/true);
                   });
}

void ClosedLoopServer::start_pull() {
  sched::PullContext ctx;
  ctx.now = sim_.now();
  ctx.expected_queue_len = static_cast<double>(pull_queue_.total_requests());
  auto entry = pull_queue_.extract_best(*pull_policy_, ctx);
  if (!entry.has_value()) {
    throw std::logic_error(
        "ClosedLoopServer: non-empty pull queue yielded no entry");
  }
  sim_.schedule_in(entry->length, [this, entry = std::move(*entry)]() {
    ++pull_transmissions_;
    for (const auto& r : entry.pending) deliver(r, false);
    serve_next(/*just_did_push=*/false);
  });
}

ClosedLoopResult ClosedLoopServer::run() {
  sim_.reset();
  // Re-seed the per-run engines so a reused server replays identically.
  think_eng_ = rng::StreamFactory(config_.seed).stream("think");
  item_eng_ = rng::StreamFactory(config_.seed).stream("items");
  pull_queue_.clear();
  if (push_sched_) push_sched_->reset();
  for (auto& waiters : push_waiters_) waiters.clear();
  owners_.clear();
  collector_ =
      std::make_unique<metrics::ClassCollector>(population_->num_classes());
  next_request_id_ = 0;
  push_transmissions_ = 0;
  pull_transmissions_ = 0;
  measured_served_ = 0;
  server_busy_ = false;

  // Every client starts with an initial think phase.
  for (std::size_t c = 0; c < config_.num_clients; ++c) {
    think_then_request(c);
  }
  if (config_.cutoff > 0) {
    server_busy_ = true;
    sim_.schedule_at(0.0, [this]() { serve_next(/*just_did_push=*/true); });
  }
  sim_.run_until(config_.horizon);

  ClosedLoopResult result;
  result.per_class = collector_->all();
  result.end_time = sim_.now();
  result.push_transmissions = push_transmissions_;
  result.pull_transmissions = pull_transmissions_;
  const double window =
      config_.horizon * (1.0 - config_.warmup_fraction);
  result.throughput =
      window > 0.0 ? static_cast<double>(measured_served_) / window : 0.0;
  return result;
}

}  // namespace pushpull::core
