#include "scenario/multicell.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "airindex/one_m_index.hpp"
#include "workload/trace.hpp"

namespace pushpull::scenario {

MulticellResult run_multicell(const catalog::Catalog& cat,
                              const workload::ClientPopulation& pop,
                              const ShapedTrace& shaped,
                              const MulticellConfig& config) {
  if (config.cells == 0) {
    throw std::invalid_argument("run_multicell: cells must be >= 1");
  }
  const auto requests = shaped.trace.requests();
  const bool routed = !shaped.cell.empty();
  if (routed && shaped.cell.size() != requests.size()) {
    throw std::invalid_argument(
        "run_multicell: shaped.cell must be empty or match the trace size");
  }

  // Split by serving cell; each slice keeps global arrival order, so every
  // per-cell engine sees a sorted trace.
  std::vector<std::vector<workload::Request>> slices(config.cells);
  std::vector<std::uint64_t> inbound(config.cells, 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::size_t c = 0;
    if (routed) {
      c = shaped.cell[i];
      if (c >= config.cells) {
        throw std::invalid_argument("run_multicell: request " +
                                    std::to_string(requests[i].id) +
                                    " routed to cell out of range");
      }
      if (shaped.home[i] != shaped.cell[i]) ++inbound[c];
    }
    slices[c].push_back(requests[i]);
  }

  MulticellResult out;
  out.cells.reserve(config.cells);
  out.per_class.assign(pop.num_classes(), metrics::ClassStats{});
  for (std::size_t c = 0; c < config.cells; ++c) {
    CellOutcome cell;
    cell.offered = slices[c].size();
    cell.inbound_handoffs = inbound[c];
    if (slices[c].empty()) {
      cell.result.per_class.assign(pop.num_classes(), metrics::ClassStats{});
    } else {
      core::MultiChannelServer server(cat, pop, config.channel);
      cell.result = server.run(workload::Trace(std::move(slices[c])));
    }
    if (config.channel.cutoff >= 1 && config.index_airtime > 0.0) {
      airindex::OneMIndexModel probe(cat, config.channel.cutoff,
                                     config.index_airtime, 1);
      cell.index_m = airindex::OneMIndexModel::optimal_m(
          probe.data_airtime(), config.index_airtime);
      airindex::OneMIndexModel model(cat, config.channel.cutoff,
                                     config.index_airtime, cell.index_m);
      cell.indexed_access = model.expected_access_time();
      cell.unindexed_access = model.unindexed_access_time();
      cell.tuning = model.expected_tuning_time();
    }
    for (std::size_t k = 0; k < out.per_class.size(); ++k) {
      out.per_class[k].merge_counters(cell.result.per_class[k]);
    }
    out.offered += cell.offered;
    out.handoffs += cell.inbound_handoffs;
    out.cells.push_back(std::move(cell));
  }
  return out;
}

}  // namespace pushpull::scenario
