#include "scenario/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/float_compare.hpp"

namespace pushpull::scenario {

namespace {

/// Integral of the linear rate a → b over the first x units of a segment
/// of length d: ∫₀ˣ (a + (b-a)/d · s) ds.
double ramp_integral(double a, double b, double d, double x) {
  const double slope = (b - a) / d;
  return x * (a + 0.5 * slope * x);
}

}  // namespace

Timeline::Timeline(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  boundaries_.reserve(segments_.size());
  prefix_.reserve(segments_.size() + 1);
  prefix_.push_back(0.0);
  double end = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    const std::string at = "Timeline: segment " + std::to_string(i);
    if (!(s.duration > 0.0) || !std::isfinite(s.duration)) {
      throw std::invalid_argument(at + ": duration must be positive finite");
    }
    if (!(s.rate_begin > 0.0) || !std::isfinite(s.rate_begin) ||
        !(s.rate_end > 0.0) || !std::isfinite(s.rate_end)) {
      throw std::invalid_argument(
          at + ": rate multipliers must be positive finite (a zero rate "
               "would make the arrival warp non-invertible)");
    }
    if (!(s.handoff_prob >= 0.0) || !(s.handoff_prob <= 1.0)) {
      throw std::invalid_argument(at +
                                  ": handoff_prob must be in [0, 1]");
    }
    end += s.duration;
    boundaries_.push_back(end);
    prefix_.push_back(prefix_.back() + ramp_integral(s.rate_begin, s.rate_end,
                                                     s.duration, s.duration));
  }
}

std::size_t Timeline::segment_index(double t) const {
  // First boundary strictly past t: boundaries are segment *ends*, so
  // t == an end belongs to the next segment (boundary-inclusive toward
  // the later segment, like DriftingGenerator epochs).
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

double Timeline::multiplier(double t) const {
  if (segments_.empty() || t < 0.0 || t >= horizon()) return 1.0;
  const std::size_t i = segment_index(t);
  const Segment& s = segments_[i];
  const double start = boundaries_[i] - s.duration;
  return s.rate_begin + (s.rate_end - s.rate_begin) * (t - start) / s.duration;
}

double Timeline::cumulative(double t) const {
  if (segments_.empty() || t <= 0.0) return t;
  if (t >= horizon()) return prefix_.back() + (t - horizon());
  const std::size_t i = segment_index(t);
  const Segment& s = segments_[i];
  const double start = boundaries_[i] - s.duration;
  return prefix_[i] +
         ramp_integral(s.rate_begin, s.rate_end, s.duration, t - start);
}

double Timeline::inverse_cumulative(double u) const {
  if (segments_.empty() || u <= 0.0) return u;
  if (u >= prefix_.back()) return horizon() + (u - prefix_.back());
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), u);
  const std::size_t i = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  const Segment& s = segments_[i];
  const double start = boundaries_[i] - s.duration;
  const double w = u - prefix_[i];  // integral still to cover in segment i
  const double a = s.rate_begin;
  double x;
  if (metrics::exactly_equal(s.rate_end, s.rate_begin)) {
    x = w / a;
  } else {
    // Solve a·x + slope·x²/2 = w via the root x = 2w / (a + √(a² + 2·slope·w)).
    // This form never subtracts nearly-equal quantities, so it stays
    // accurate for small w and for slopes of either sign; the radicand is
    // non-negative whenever w lies inside the segment's integral.
    const double slope = (s.rate_end - s.rate_begin) / s.duration;
    const double radicand = std::max(0.0, a * a + 2.0 * slope * w);
    x = 2.0 * w / (a + std::sqrt(radicand));
  }
  return start + std::clamp(x, 0.0, s.duration);
}

std::size_t Timeline::rotation_at(double t) const {
  if (segments_.empty() || t < 0.0) return 0;
  if (t >= horizon()) return segments_.back().rotation;
  return segments_[segment_index(t)].rotation;
}

double Timeline::handoff_prob_at(double t) const {
  if (segments_.empty() || t < 0.0 || t >= horizon()) return 0.0;
  return segments_[segment_index(t)].handoff_prob;
}

}  // namespace pushpull::scenario
