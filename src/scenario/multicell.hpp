#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/multichannel_server.hpp"
#include "metrics/class_stats.hpp"
#include "scenario/shaper.hpp"
#include "workload/population.hpp"

namespace pushpull::scenario {

/// A small cellular deployment: `cells` independent multi-channel hybrid
/// servers, each serving the shaped requests homed (or re-homed) to it.
struct MulticellConfig {
  std::size_t cells = 2;
  core::MultiChannelConfig channel;
  /// Airtime of one (1, m) index copy for the per-cell energy score; the
  /// number of copies is chosen per cell via OneMIndexModel::optimal_m.
  double index_airtime = 1.0;
};

/// Per-cell outcome: engine counters plus the cell's (1, m) air-index
/// energy score at the optimal m for its push set.
struct CellOutcome {
  core::MultiChannelResult result;
  std::uint64_t offered = 0;          ///< requests served by this cell
  std::uint64_t inbound_handoffs = 0; ///< requests whose home was elsewhere
  std::size_t index_m = 0;            ///< m* used for the energy score
  double indexed_access = 0.0;
  double unindexed_access = 0.0;
  double tuning = 0.0;
};

/// Deployment-wide outcome with counters pooled across cells in cell
/// order (quantiles are per-cell only; see metrics::ClassStats::merge_counters).
struct MulticellResult {
  std::vector<CellOutcome> cells;
  std::vector<metrics::ClassStats> per_class;
  std::uint64_t offered = 0;
  std::uint64_t handoffs = 0;  ///< total inbound handoffs across cells

  [[nodiscard]] metrics::ClassStats overall() const {
    metrics::ClassStats total;
    for (const auto& s : per_class) total.merge_counters(s);
    return total;
  }
};

/// Runs a shaped trace across `config.cells` independent cells: the trace
/// is split by ShapedTrace::cell (everything lands in cell 0 when the
/// shaper ran single-cell), each slice replays through its own
/// core::MultiChannelServer, and the per-class counters merge in cell
/// order — deterministic because the split preserves arrival order and
/// every engine is seeded by its own trace slice alone.
///
/// Requires shaped.cell to be empty (single-cell) or sized to the trace.
/// Throws std::invalid_argument on a malformed shaped trace or a cell id
/// out of range.
[[nodiscard]] MulticellResult run_multicell(
    const catalog::Catalog& cat, const workload::ClientPopulation& pop,
    const ShapedTrace& shaped, const MulticellConfig& config);

}  // namespace pushpull::scenario
