#include "scenario/presets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pushpull::scenario {

std::string_view to_string(Preset preset) noexcept {
  switch (preset) {
    case Preset::kNone:
      return "none";
    case Preset::kDiurnal:
      return "diurnal";
    case Preset::kFlashcrowd:
      return "flashcrowd";
    case Preset::kCommuter:
      return "commuter";
    case Preset::kKitchenSink:
      return "kitchen-sink";
  }
  return "none";
}

Preset parse_preset(const std::string& name) {
  for (Preset p : {Preset::kNone, Preset::kDiurnal, Preset::kFlashcrowd,
                   Preset::kCommuter, Preset::kKitchenSink}) {
    if (name == to_string(p)) return p;
  }
  throw std::invalid_argument(
      "unknown scenario preset '" + name +
      "' (valid: none, diurnal, flashcrowd, commuter, kitchen-sink)");
}

namespace {

/// Builder scoped to one (intensity, num_items) pair so the preset tables
/// below read as plain shape descriptions.
class PresetBuilder {
 public:
  PresetBuilder(double intensity, std::size_t num_items)
      : intensity_(intensity), n_(num_items) {}

  /// Rate multiplier with its deviation from 1 scaled by intensity,
  /// floored so the warp stays invertible at extreme intensities.
  [[nodiscard]] double rate(double nominal) const {
    return std::max(0.05, 1.0 + intensity_ * (nominal - 1.0));
  }

  /// Handoff probability scaled by intensity, capped below 1 so shaping
  /// never deletes a whole segment's requests.
  [[nodiscard]] double handoff(double nominal) const {
    return std::clamp(nominal * intensity_, 0.0, 0.9);
  }

  /// Rotation of `num`/`den` of the catalog (at least 1 item when the
  /// fraction rounds to zero on tiny catalogs).
  [[nodiscard]] std::size_t turn(std::size_t num, std::size_t den) const {
    return std::max<std::size_t>(1, n_ * num / den) % std::max<std::size_t>(
               1, n_);
  }

  void segment(double duration, double rate_begin, double rate_end,
               std::size_t rotation, double handoff_prob) {
    segments_.push_back(
        Segment{duration, rate_begin, rate_end, rotation, handoff_prob});
  }

  [[nodiscard]] Timeline build() { return Timeline(std::move(segments_)); }

 private:
  double intensity_;
  std::size_t n_;
  std::vector<Segment> segments_;
};

}  // namespace

Timeline make_timeline(Preset preset, double intensity, double horizon,
                       std::size_t num_items) {
  if (preset == Preset::kNone) return Timeline{};
  if (!(intensity > 0.0) || !std::isfinite(intensity)) {
    throw std::invalid_argument(
        "make_timeline: intensity must be positive finite");
  }
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument(
        "make_timeline: horizon must be positive finite");
  }
  if (num_items == 0) {
    throw std::invalid_argument("make_timeline: num_items must be >= 1");
  }
  PresetBuilder b(intensity, num_items);
  const double h = horizon;
  switch (preset) {
    case Preset::kNone:
      break;  // unreachable (early-returned above); keeps -Wswitch quiet
    case Preset::kDiurnal: {
      // One "day" across the horizon: night trough, morning ramp to the
      // midday peak, afternoon ease-off with interests shifting an eighth
      // of the catalog, evening decay. Nominal mean multiplier ≈ 1 so the
      // preset reshapes load without changing the total offered volume.
      const double q = h / 4.0;
      b.segment(q, b.rate(0.6), b.rate(0.6), 0, 0.0);
      b.segment(q, b.rate(0.6), b.rate(1.6), 0, 0.0);
      b.segment(q, b.rate(1.6), b.rate(1.0), b.turn(1, 8), 0.0);
      b.segment(q, b.rate(1.0), b.rate(0.6), b.turn(1, 8), 0.0);
      break;
    }
    case Preset::kFlashcrowd: {
      // Quiet baseline, then a crowd arrives: the rate ramps to 1 + 3i and
      // the hot set jumps half the catalog at the same instant — exactly
      // the shift that leaves a statically-tuned cutoff serving yesterday's
      // prefix (the adaptive re-optimizer's showcase, gated in
      // bench/scenario_sweep).
      const double peak = 1.0 + 3.0 * intensity;
      b.segment(0.4 * h, 1.0, 1.0, 0, 0.0);
      b.segment(0.1 * h, 1.0, peak, b.turn(1, 2), 0.0);
      b.segment(0.2 * h, peak, peak, b.turn(1, 2), 0.0);
      b.segment(0.3 * h, peak, 1.0, b.turn(1, 2), 0.0);
      break;
    }
    case Preset::kCommuter: {
      // Morning and evening handoff waves with mild load bumps; interests
      // creep an eighth of the catalog per phase (commuters carry their
      // sessions across cells, so mobility and drift arrive together).
      const double s = h / 6.0;
      b.segment(s, b.rate(1.2), b.rate(1.2), 0, b.handoff(0.30));
      b.segment(s, 1.0, 1.0, b.turn(1, 8), 0.0);
      b.segment(s, b.rate(1.1), b.rate(1.1), b.turn(1, 8), b.handoff(0.10));
      b.segment(s, 1.0, 1.0, b.turn(1, 4), 0.0);
      b.segment(s, b.rate(1.3), b.rate(1.3), b.turn(1, 4), b.handoff(0.35));
      b.segment(s, b.rate(0.8), b.rate(0.8), b.turn(3, 8), 0.0);
      break;
    }
    case Preset::kKitchenSink: {
      // Everything at once: the diurnal envelope, a flash crowd landing on
      // the midday shoulder, and commuter handoff waves morning and
      // evening, with the hot set three quarters around by close of play.
      const double s = h / 8.0;
      const double peak = 1.0 + 2.5 * intensity;
      b.segment(s, b.rate(0.6), b.rate(0.8), 0, 0.0);
      b.segment(s, b.rate(0.8), b.rate(1.4), 0, b.handoff(0.25));
      b.segment(s, b.rate(1.4), b.rate(1.2), b.turn(1, 8), 0.0);
      b.segment(s, b.rate(1.2), peak, b.turn(1, 2), 0.0);
      b.segment(s, peak, peak, b.turn(1, 2), b.handoff(0.15));
      b.segment(s, peak, b.rate(1.1), b.turn(5, 8), 0.0);
      b.segment(s, b.rate(1.1), b.rate(0.9), b.turn(5, 8), b.handoff(0.30));
      b.segment(s, b.rate(0.9), b.rate(0.6), b.turn(3, 4), 0.0);
      break;
    }
  }
  return b.build();
}

}  // namespace pushpull::scenario
