#include "scenario/shaper.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/float_compare.hpp"
#include "rng/splitmix64.hpp"

namespace pushpull::scenario {

namespace {

// Stream tags keep the four per-request decisions (migrate?, lost?,
// latency, home cell / target cell) on independent hash chains so no
// decision can alias another.
constexpr std::uint64_t kMigrateStream = 0x4D16A7E5ULL;
constexpr std::uint64_t kLossStream = 0x10575EEDULL;
constexpr std::uint64_t kDelayStream = 0xDE1A15ECULL;
constexpr std::uint64_t kHomeStream = 0x40AE5CE1ULL;
constexpr std::uint64_t kTargetStream = 0x7A46E7CEULL;

/// Two-round counter hash: order-independent, engine-free (detlint D5).
std::uint64_t hash2(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t counter) {
  return rng::SplitMix64::mix(rng::SplitMix64::mix(seed ^ stream) ^ counter);
}

/// Top-53-bit conversion to [0, 1), same contract as rng::uniform01.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t ShapeSummary::total_base() const noexcept {
  return std::accumulate(base_per_class.begin(), base_per_class.end(),
                         std::uint64_t{0});
}

std::uint64_t ShapeSummary::total_lost() const noexcept {
  return std::accumulate(handoff_lost.begin(), handoff_lost.end(),
                         std::uint64_t{0});
}

HandoffDraw handoff_draw(std::uint64_t seed, workload::RequestId id,
                         double prob) {
  HandoffDraw draw;
  if (prob <= 0.0) return draw;
  if (unit(hash2(seed, kMigrateStream, id)) >= prob) return draw;
  draw.migrates = true;
  if (unit(hash2(seed, kLossStream, id)) < kHandoffLossFraction) {
    draw.lost = true;
    return draw;
  }
  draw.delay = kHandoffDelayMin + (kHandoffDelayMax - kHandoffDelayMin) *
                                      unit(hash2(seed, kDelayStream, id));
  return draw;
}

std::size_t home_cell(std::uint64_t seed, workload::RequestId id,
                      std::size_t cells) {
  if (cells <= 1) return 0;
  return static_cast<std::size_t>(hash2(seed, kHomeStream, id) %
                                  static_cast<std::uint64_t>(cells));
}

std::size_t handoff_target(std::uint64_t seed, workload::RequestId id,
                           std::size_t home, std::size_t cells) {
  if (cells <= 1) return home;
  const std::size_t offset =
      1 + static_cast<std::size_t>(hash2(seed, kTargetStream, id) %
                                   static_cast<std::uint64_t>(cells - 1));
  return (home + offset) % cells;
}

ShapedTrace shape_trace(const workload::Trace& base, const Timeline& timeline,
                        std::uint64_t seed, std::size_t num_items,
                        std::size_t num_classes, std::size_t cells) {
  if (num_items == 0) {
    throw std::invalid_argument("shape_trace: num_items must be >= 1");
  }
  if (num_classes == 0) {
    throw std::invalid_argument("shape_trace: num_classes must be >= 1");
  }
  if (cells == 0) {
    throw std::invalid_argument("shape_trace: cells must be >= 1");
  }
  ShapedTrace out;
  out.summary.base_per_class.assign(num_classes, 0);
  out.summary.offered_per_class.assign(num_classes, 0);
  out.summary.handoff_lost.assign(num_classes, 0);
  for (const workload::Request& r : base.requests()) {
    if (r.cls >= num_classes) {
      throw std::invalid_argument("shape_trace: request " +
                                  std::to_string(r.id) +
                                  " has class out of range");
    }
    ++out.summary.base_per_class[r.cls];
  }
  if (timeline.empty()) {
    out.trace = base;
    out.summary.offered_per_class = out.summary.base_per_class;
    return out;
  }
  out.summary.active = true;

  std::vector<workload::Request> shaped;
  shaped.reserve(base.size());
  const bool track_cells = cells > 1;
  std::vector<std::uint32_t> home;
  std::vector<std::uint32_t> cell;
  if (track_cells) {
    home.reserve(base.size());
    cell.reserve(base.size());
  }
  for (const workload::Request& r : base.requests()) {
    const double warped = timeline.inverse_cumulative(r.arrival);
    const std::size_t rotation = timeline.rotation_at(warped) % num_items;
    catalog::ItemId item = r.item;
    if (rotation != 0) {
      item = (r.item + rotation) % num_items;
      if (item != r.item) ++out.summary.rotated;
    }
    const HandoffDraw draw =
        handoff_draw(seed, r.id, timeline.handoff_prob_at(warped));
    if (draw.lost) {
      ++out.summary.handoff_lost[r.cls];
      continue;
    }
    if (draw.migrates) ++out.summary.rehomed;
    shaped.push_back(
        workload::Request{r.id, item, r.cls, warped + draw.delay});
    ++out.summary.offered_per_class[r.cls];
    if (track_cells) {
      const std::size_t h = home_cell(seed, r.id, cells);
      home.push_back(static_cast<std::uint32_t>(h));
      cell.push_back(static_cast<std::uint32_t>(
          draw.migrates ? handoff_target(seed, r.id, h, cells) : h));
    }
  }

  // Handoff latency can locally reorder arrivals; restore the engines'
  // sorted-arrival precondition with a total (arrival, id) order so the
  // result is independent of the pre-sort layout.
  std::vector<std::size_t> order(shaped.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&shaped](std::size_t a, std::size_t b) {
              if (!metrics::exactly_equal(shaped[a].arrival,
                                          shaped[b].arrival)) {
                return shaped[a].arrival < shaped[b].arrival;
              }
              return shaped[a].id < shaped[b].id;
            });
  std::vector<workload::Request> sorted;
  sorted.reserve(shaped.size());
  for (std::size_t i : order) sorted.push_back(shaped[i]);
  if (track_cells) {
    out.home.reserve(order.size());
    out.cell.reserve(order.size());
    for (std::size_t i : order) {
      out.home.push_back(home[i]);
      out.cell.push_back(cell[i]);
    }
  }
  out.trace = workload::Trace(std::move(sorted));
  return out;
}

}  // namespace pushpull::scenario
