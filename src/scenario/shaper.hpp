#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scenario/timeline.hpp"
#include "workload/request.hpp"
#include "workload/trace.hpp"

namespace pushpull::scenario {

/// Bookkeeping from one shaping pass, the ground truth the
/// conservation-across-handoff invariant audits: every base request must
/// end up either offered to the server or counted handoff-lost, per class.
struct ShapeSummary {
  /// False for the identity pass (empty timeline) — downstream consumers
  /// can skip scenario columns/checks entirely.
  bool active = false;
  /// Requests per class in the base trace, before shaping.
  std::vector<std::uint64_t> base_per_class;
  /// Requests per class in the shaped trace (base - handoff losses).
  std::vector<std::uint64_t> offered_per_class;
  /// Requests per class dropped mid-handoff (the in-flight pull that the
  /// target cell never hears about).
  std::vector<std::uint64_t> handoff_lost;
  /// Requests that migrated cells and survived (re-homed with the handoff
  /// latency added to their arrival).
  std::uint64_t rehomed = 0;
  /// Requests whose item moved under a non-zero rotation.
  std::uint64_t rotated = 0;

  [[nodiscard]] std::uint64_t total_base() const noexcept;
  [[nodiscard]] std::uint64_t total_lost() const noexcept;
};

/// A shaped trace plus its audit trail. When shaping ran with `cells > 1`,
/// `home` and `cell` give each surviving request's hash-derived home cell
/// and the cell that actually serves it (different exactly for re-homed
/// requests); both are empty for single-cell shaping.
struct ShapedTrace {
  workload::Trace trace;
  ShapeSummary summary;
  std::vector<std::uint32_t> home;
  std::vector<std::uint32_t> cell;
};

/// Outcome of the per-request mobility draw — exposed so tests can pin the
/// hash-derived decisions and the multicell runner agrees with the shaper
/// by construction.
struct HandoffDraw {
  bool migrates = false;
  bool lost = false;
  /// Handoff latency added to a re-homed request's arrival (0 otherwise).
  double delay = 0.0;
};

/// Fraction of migrating requests lost in flight, and the latency window
/// a surviving migration lands in. Fixed constants of the mobility model
/// (documented in DESIGN.md §12).
inline constexpr double kHandoffLossFraction = 0.25;
inline constexpr double kHandoffDelayMin = 0.25;
inline constexpr double kHandoffDelayMax = 1.25;

/// The stateless mobility decision for one request: counter-based hashing
/// of (seed, id) through SplitMix64 — no RNG engine, no stream state, so
/// the draw is independent of request order and of how many other requests
/// exist (detlint D2/D5 stay clean and parallel replications stay
/// bit-identical).
[[nodiscard]] HandoffDraw handoff_draw(std::uint64_t seed,
                                       workload::RequestId id, double prob);

/// Hash-derived home cell of a request (uniform over [0, cells)).
[[nodiscard]] std::size_t home_cell(std::uint64_t seed,
                                    workload::RequestId id,
                                    std::size_t cells);

/// Hash-derived handoff target: a cell different from `home` whenever
/// cells > 1.
[[nodiscard]] std::size_t handoff_target(std::uint64_t seed,
                                         workload::RequestId id,
                                         std::size_t home, std::size_t cells);

/// Applies a timeline to a recorded trace, RNG-free:
///
///  1. arrival warp — each arrival u moves to Λ⁻¹(u) (see Timeline), so
///     the instantaneous rate follows the timeline's multiplier while the
///     request population is untouched;
///  2. rotation — each item i becomes (i + rotation_at(t)) mod D at its
///     warped time t, the moving-Zipf drift;
///  3. mobility — at warped time t each request migrates with probability
///     handoff_prob_at(t) (counter-hashed on (seed, id)); a migrating
///     request is lost with kHandoffLossFraction, otherwise re-homed with
///     a hash-derived latency in [kHandoffDelayMin, kHandoffDelayMax).
///
/// Surviving requests are re-sorted by (arrival, id) — handoff latency can
/// locally reorder — and keep their original ids. An empty timeline
/// returns the trace unchanged with an inactive summary. The identity
/// base_per_class == offered_per_class + handoff_lost holds per class by
/// construction and is re-verified downstream by
/// resilience::check_invariants.
[[nodiscard]] ShapedTrace shape_trace(const workload::Trace& base,
                                      const Timeline& timeline,
                                      std::uint64_t seed,
                                      std::size_t num_items,
                                      std::size_t num_classes,
                                      std::size_t cells = 1);

}  // namespace pushpull::scenario
