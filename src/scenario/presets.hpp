#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "scenario/timeline.hpp"

namespace pushpull::scenario {

/// Named environment timelines, surfaced as `--scenario NAME` on the
/// `simulate` / `chaos` / `replicate` / `serve` / `loadtest` commands.
enum class Preset {
  kNone = 0,        ///< stationary workload; the timeline machinery is off
  kDiurnal,         ///< day curve: night trough, morning ramp, midday peak
  kFlashcrowd,      ///< sudden rate spike with the hot set jumping D/2
  kCommuter,        ///< mobility waves: handoff bursts + creeping rotation
  kKitchenSink,     ///< all of the above composed in one timeline
};

[[nodiscard]] std::string_view to_string(Preset preset) noexcept;

/// Parses "none", "diurnal", "flashcrowd", "commuter" or "kitchen-sink";
/// throws std::invalid_argument listing the valid names otherwise.
[[nodiscard]] Preset parse_preset(const std::string& name);

/// Materializes a preset over `horizon` broadcast units for a D-item
/// catalog. `intensity` scales how far the preset departs from the
/// stationary baseline (1.0 = the nominal shape): rate multipliers scale
/// their deviation from 1, handoff probabilities scale linearly (clamped
/// to 0.9). Must be positive and finite; `horizon` must be positive.
/// kNone returns the empty timeline.
[[nodiscard]] Timeline make_timeline(Preset preset, double intensity,
                                     double horizon, std::size_t num_items);

}  // namespace pushpull::scenario
