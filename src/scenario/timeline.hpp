#pragma once

#include <cstddef>
#include <vector>

namespace pushpull::scenario {

/// One piece of the environment timeline. Segments are laid back-to-back
/// starting at virtual time 0; a segment's start is the sum of the
/// durations before it, so a timeline is contiguous by construction and
/// never needs a gap/overlap check.
struct Segment {
  /// Length in broadcast units; must be positive and finite.
  double duration = 0.0;
  /// Arrival-rate multiplier at the segment's start and end; the rate in
  /// between interpolates linearly. Both must be positive and finite
  /// (1.0 = the base rate untouched).
  double rate_begin = 1.0;
  double rate_end = 1.0;
  /// Catalog rotation in force during the segment: popularity rank r maps
  /// to item (r + rotation) mod D, the DriftingGenerator mechanic applied
  /// as a trace transformation.
  std::size_t rotation = 0;
  /// Per-request probability of a cell handoff while this segment is in
  /// force; must be in [0, 1].
  double handoff_prob = 0.0;
};

/// A seeded, composable environment timeline: piecewise-linear arrival
/// modulation plus per-segment popularity rotation and mobility pressure.
///
/// The timeline is pure data — it draws no RNG and holds no clock. The
/// arrival shaping is a deterministic *time-warp* of a recorded trace: a
/// base arrival instant u maps to Λ⁻¹(u) where Λ(t) = ∫₀ᵗ multiplier(s) ds,
/// so the instantaneous rate at warped time t is base_rate · multiplier(t)
/// while the request population (ids, items, classes, count) is untouched.
/// Λ is strictly increasing (rates are positive), hence invertible and
/// order-preserving.
///
/// Boundary semantics are inclusive toward the *later* segment: at
/// t == boundary the new segment's rotation/handoff/rate is in force,
/// matching workload::DriftingGenerator's epoch convention. Past the last
/// segment the multiplier returns to 1.0 and handoff pressure to 0, but the
/// final rotation persists — a drifted hot set does not snap back when the
/// timeline runs out.
class Timeline {
 public:
  /// The empty timeline: identity warp, no rotation, no handoffs.
  Timeline() = default;

  /// Validates every segment (positive finite duration, positive finite
  /// rates, handoff probability in [0, 1]) and precomputes the cumulative
  /// integral at each boundary; throws std::invalid_argument naming the
  /// offending segment.
  explicit Timeline(std::vector<Segment> segments);

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  /// End of the last segment (0 for the empty timeline).
  [[nodiscard]] double horizon() const noexcept {
    return boundaries_.empty() ? 0.0 : boundaries_.back();
  }

  /// Arrival-rate multiplier in force at t (1.0 outside [0, horizon)).
  [[nodiscard]] double multiplier(double t) const;

  /// Λ(t) = ∫₀ᵗ multiplier(s) ds; linear continuation with slope 1 past
  /// the horizon, identity for t <= 0.
  [[nodiscard]] double cumulative(double t) const;

  /// Λ⁻¹(u): the warped instant a base arrival at u lands on. Exact
  /// inverse of cumulative() up to floating-point rounding; uses the
  /// cancellation-stable quadratic root for ramp segments.
  [[nodiscard]] double inverse_cumulative(double u) const;

  /// Catalog rotation in force at t (the final segment's rotation persists
  /// past the horizon; 0 before the timeline starts).
  [[nodiscard]] std::size_t rotation_at(double t) const;

  /// Handoff probability in force at t (0 outside [0, horizon)).
  [[nodiscard]] double handoff_prob_at(double t) const;

 private:
  /// Index of the segment containing t; requires 0 <= t < horizon().
  [[nodiscard]] std::size_t segment_index(double t) const;

  std::vector<Segment> segments_;
  /// boundaries_[i] = end of segment i (= start of segment i+1).
  std::vector<double> boundaries_;
  /// prefix_[i] = Λ(start of segment i); prefix_.back() = Λ(horizon).
  std::vector<double> prefix_;
};

}  // namespace pushpull::scenario
