#pragma once

#include <cmath>

#include "rng/uniform.hpp"

namespace pushpull::rng {

/// Exponential variate with the given rate (mean 1/rate), by inversion.
/// Used for Poisson-process inter-arrival times and exponential service
/// times in both the simulator and the analytical model's assumptions.
template <typename Engine>
[[nodiscard]] double exponential(Engine& eng, double rate) {
  // 1 - u is in (0, 1], so the log is finite.
  return -std::log1p(-uniform01(eng)) / rate;
}

}  // namespace pushpull::rng
