#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace pushpull::rng {

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
///
/// The workhorse engine for every simulation in this library. Chosen over
/// std::mt19937_64 because it is faster, has a quarter of the state, and —
/// crucially for reproducible experiments — its output is fully specified
/// here rather than delegated to the standard library. Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 from `seed`, as the
  /// algorithm's authors recommend (avoids the all-zero state).
  constexpr explicit Xoshiro256ss(std::uint64_t seed = 1) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the engine 2^128 steps; used to carve non-overlapping
  /// substreams out of one seed.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pushpull::rng
