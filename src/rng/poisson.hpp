#pragma once

#include <cmath>
#include <cstdint>

#include "rng/uniform.hpp"

namespace pushpull::rng {

/// Poisson variate with the given mean.
///
/// Knuth's product method for small means; larger means are split in half
/// recursively (the sum of independent Poissons is Poisson), which keeps the
/// algorithm exact without the complexity of a rejection sampler. Means in
/// this library (bandwidth demands, batch sizes) are small, so the split
/// path is rarely taken.
template <typename Engine>
[[nodiscard]] std::uint64_t poisson(Engine& eng, double mean) {
  std::uint64_t total = 0;
  while (mean > 30.0) {
    // Split: draw Poisson(mean/2) twice across loop iterations.
    const double half = mean / 2.0;
    total += poisson(eng, half);
    mean -= half;
  }
  const double limit = std::exp(-mean);
  double product = uniform01(eng);
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform01(eng);
  }
  return total + count;
}

}  // namespace pushpull::rng
