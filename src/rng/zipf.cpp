#include "rng/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace pushpull::rng {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta)
    : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (theta < 0.0) {
    throw std::invalid_argument("ZipfDistribution: theta must be >= 0");
  }
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = std::pow(1.0 / static_cast<double>(i + 1), theta);
    norm += pmf_[i];
  }
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    running += pmf_[i];
    cdf_[i] = running;
  }
  cdf_[n - 1] = 1.0;  // clamp accumulated rounding
  table_ = AliasTable(pmf_);
}

}  // namespace pushpull::rng
