#pragma once

#include <cstdint>
#include <string_view>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::rng {

/// Derives statistically independent engines from one master seed.
///
/// Every stochastic component of a simulation (arrivals, item choice, class
/// choice, lengths, bandwidth demands) draws from its own named stream, so
/// changing how one component consumes randomness does not perturb the
/// others — the standard variance-reduction discipline for simulation
/// studies, and the thing that makes A/B policy comparisons paired.
class StreamFactory {
 public:
  constexpr explicit StreamFactory(std::uint64_t master_seed) noexcept
      : master_seed_(master_seed) {}

  [[nodiscard]] constexpr std::uint64_t master_seed() const noexcept {
    return master_seed_;
  }

  /// Engine for the numbered stream.
  [[nodiscard]] Xoshiro256ss stream(std::uint64_t stream_id) const noexcept {
    return Xoshiro256ss(derive(stream_id));
  }

  /// Engine for a named stream ("arrivals", "lengths", ...). Names hash via
  /// FNV-1a, then mix with the master seed.
  [[nodiscard]] Xoshiro256ss stream(std::string_view name) const noexcept {
    return Xoshiro256ss(derive(fnv1a(name)));
  }

 private:
  [[nodiscard]] constexpr std::uint64_t derive(
      std::uint64_t stream_id) const noexcept {
    return SplitMix64::mix(master_seed_ ^ SplitMix64::mix(stream_id));
  }

  static constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::uint64_t master_seed_;
};

}  // namespace pushpull::rng
