#pragma once

#include <cstdint>
#include <limits>

namespace pushpull::rng {

/// Converts one 64-bit draw to a double in [0, 1) using the top 53 bits.
/// Fully specified (unlike std::uniform_real_distribution) so simulations
/// replay identically across standard libraries.
template <typename Engine>
[[nodiscard]] double uniform01(Engine& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Engine>
[[nodiscard]] double uniform(Engine& eng, double lo, double hi) {
  return lo + (hi - lo) * uniform01(eng);
}

/// Unbiased uniform integer in [0, n) via Lemire's multiply-shift rejection.
template <typename Engine>
[[nodiscard]] std::uint64_t uniform_below(Engine& eng, std::uint64_t n) {
  if (n <= 1) return 0;
  // 128-bit multiply: x * n / 2^64, rejecting the biased low region.
  __extension__ using uint128 = unsigned __int128;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t x = eng();
    const uint128 m = static_cast<uint128>(x) * static_cast<uint128>(n);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

/// Uniform integer in the closed interval [lo, hi].
template <typename Engine>
[[nodiscard]] std::int64_t uniform_int(Engine& eng, std::int64_t lo,
                                       std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo required
  return lo + static_cast<std::int64_t>(uniform_below(eng, span));
}

}  // namespace pushpull::rng
