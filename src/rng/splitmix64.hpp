#pragma once

#include <cstdint>

namespace pushpull::rng {

/// SplitMix64 pseudo-random engine (Steele, Lea, Flood 2014).
///
/// A tiny, fast, statistically solid 64-bit generator. Its main role here is
/// seeding: it expands a single 64-bit seed into the 256-bit state of
/// Xoshiro256ss, and it hashes (seed, stream-id) pairs into independent
/// substream seeds. It satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Stateless mix of a single value; used for hashing stream identifiers.
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace pushpull::rng
