#pragma once

#include <cstddef>
#include <vector>

#include "rng/alias_table.hpp"

namespace pushpull::rng {

/// Zipf distribution over ranks 1..n with skew coefficient theta:
///   P(rank i) = (1/i)^theta / sum_j (1/j)^theta.
///
/// The paper drives both item popularity (theta in {0.2, 0.6, 1.0, 1.4})
/// and the client-class population split with this law. theta = 0 is the
/// uniform distribution; larger theta concentrates mass on low ranks.
class ZipfDistribution {
 public:
  /// n >= 1, theta >= 0.
  ZipfDistribution(std::size_t n, double theta);

  [[nodiscard]] std::size_t size() const noexcept { return pmf_.size(); }
  [[nodiscard]] double theta() const noexcept { return theta_; }

  /// Probability of rank i (0-based index; rank = i + 1).
  [[nodiscard]] double pmf(std::size_t i) const noexcept { return pmf_[i]; }

  /// Cumulative probability of ranks 1..i+1.
  [[nodiscard]] double cdf(std::size_t i) const noexcept { return cdf_[i]; }

  /// Full probability vector, most popular rank first.
  [[nodiscard]] const std::vector<double>& probabilities() const noexcept {
    return pmf_;
  }

  /// Draws a 0-based rank in O(1) via the alias table.
  template <typename Engine>
  [[nodiscard]] std::size_t sample(Engine& eng) const {
    return table_.sample(eng);
  }

 private:
  double theta_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
  AliasTable table_;
};

}  // namespace pushpull::rng
