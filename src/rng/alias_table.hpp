#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/uniform.hpp"

namespace pushpull::rng {

/// O(1) sampling from an arbitrary discrete distribution (Vose's alias
/// method). Construction is O(n); each draw costs one integer draw and one
/// uniform. Used for Zipf item selection and client-class selection, where
/// millions of draws per simulation make inversion-by-search too slow.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from unnormalized non-negative weights.
  /// Zero-weight entries are never sampled. Weights must not all be zero.
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Normalized probability of index i (recomputed from the input weights).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_[i];
  }

  /// Draws an index distributed according to the weights.
  template <typename Engine>
  [[nodiscard]] std::size_t sample(Engine& eng) const {
    const auto column =
        static_cast<std::size_t>(uniform_below(eng, prob_.size()));
    return uniform01(eng) < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;         // acceptance threshold per column
  std::vector<std::size_t> alias_;   // fallback index per column
  std::vector<double> normalized_;   // exact input probabilities, for queries
};

}  // namespace pushpull::rng
