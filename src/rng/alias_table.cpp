#include "rng/alias_table.hpp"

#include <numeric>
#include <stdexcept>

namespace pushpull::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasTable: weights must sum to > 0");
  }
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
  }

  const std::size_t n = weights.size();
  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale so the average column holds exactly 1.0 of probability mass.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining columns are full (1.0) up to floating-point error.
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

}  // namespace pushpull::rng
