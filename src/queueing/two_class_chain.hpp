#pragma once

#include <cstddef>
#include <vector>

namespace pushpull::queueing {

/// Numerical solution of the paper's §4.2.1 two-class system: a
/// non-preemptive priority M/M/1 whose state is (m, n, r) — m class-1 and
/// n class-2 customers present, r ∈ {0, 1, 2} the class in service (0 =
/// idle). The paper attacks this chain with two nested z-transforms
/// (Eqs. 7–13) and admits "obtaining a reasonable solution to these set of
/// stationary equations is almost impossible"; here the truncated chain is
/// solved exactly by power iteration instead, giving L₁, L₂ and — via
/// Little — E[W₁], E[W₂] without any transform algebra.
///
/// Cross-validation: for exponential service the per-class *queueing*
/// waits must match Cobham's formula (§4.2.2), which the tests assert.
class TwoClassPriorityChain {
 public:
  /// λ₁/λ₂: class arrival rates (class 1 has priority); μ: service rate
  /// (shared, exponential); capacity: per-class truncation bound.
  TwoClassPriorityChain(double lambda1, double lambda2, double mu,
                        std::size_t capacity);

  [[nodiscard]] double lambda1() const noexcept { return lambda1_; }
  [[nodiscard]] double lambda2() const noexcept { return lambda2_; }
  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Solves the stationary distribution (idempotent).
  void solve(double tolerance = 1e-13, std::size_t max_iterations = 2000000);

  /// Stationary probability of (m, n, r). Requires solve().
  [[nodiscard]] double p(std::size_t m, std::size_t n, int serving) const;

  /// L₁, L₂ — mean customers present per class (in queue + in service).
  [[nodiscard]] double mean_class1() const;
  [[nodiscard]] double mean_class2() const;

  /// E[W] per class via Little's law — *sojourn* (queue + service).
  [[nodiscard]] double sojourn_class1() const;
  [[nodiscard]] double sojourn_class2() const;

  /// E[W] per class excluding own service (comparable to cobham_waits).
  [[nodiscard]] double queue_wait_class1() const;
  [[nodiscard]] double queue_wait_class2() const;

  /// P(system empty).
  [[nodiscard]] double idle_probability() const;

 private:
  [[nodiscard]] std::size_t index(std::size_t m, std::size_t n,
                                  int serving) const noexcept {
    return (m * (capacity_ + 1) + n) * 3 + static_cast<std::size_t>(serving);
  }
  void apply_step(const std::vector<double>& from,
                  std::vector<double>& to) const;
  void require_solved() const;

  double lambda1_;
  double lambda2_;
  double mu_;
  std::size_t capacity_;
  std::vector<double> pi_;
};

}  // namespace pushpull::queueing
