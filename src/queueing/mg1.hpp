#pragma once

#include <limits>

namespace pushpull::queueing {

/// M/G/1 queue via the Pollaczek–Khinchine formula. The pull side's service
/// times are item airtimes — bounded, far from exponential — so the M/G/1
/// view quantifies how much the §4 exponential assumption distorts the
/// paper's model (EXPERIMENTS.md discusses the gap).
struct MG1 {
  double lambda = 0.0;          // arrival rate
  double mean_service = 1.0;    // E[S]
  double second_moment = 2.0;   // E[S²]

  /// Exponential service with rate mu: E[S] = 1/mu, E[S²] = 2/mu².
  [[nodiscard]] static MG1 exponential(double lambda, double mu) {
    return MG1{lambda, 1.0 / mu, 2.0 / (mu * mu)};
  }

  /// Deterministic service d: E[S²] = d².
  [[nodiscard]] static MG1 deterministic(double lambda, double d) {
    return MG1{lambda, d, d * d};
  }

  /// Discrete service distribution given (value, probability) pairs.
  template <typename Pairs>
  [[nodiscard]] static MG1 discrete(double lambda, const Pairs& pairs) {
    double m1 = 0.0;
    double m2 = 0.0;
    for (const auto& [value, prob] : pairs) {
      m1 += value * prob;
      m2 += value * value * prob;
    }
    return MG1{lambda, m1, m2};
  }

  [[nodiscard]] double rho() const noexcept { return lambda * mean_service; }
  [[nodiscard]] bool stable() const noexcept { return rho() < 1.0; }

  /// Mean wait in queue (P-K): λ·E[S²] / (2(1−ρ)).
  [[nodiscard]] double mean_wait() const noexcept {
    if (!stable()) return std::numeric_limits<double>::infinity();
    return lambda * second_moment / (2.0 * (1.0 - rho()));
  }

  /// Mean sojourn: wait + service.
  [[nodiscard]] double mean_sojourn() const noexcept {
    return mean_wait() + mean_service;
  }

  /// Mean number in system (Little).
  [[nodiscard]] double mean_in_system() const noexcept {
    return lambda * mean_sojourn();
  }

  /// Mean number in queue (Little).
  [[nodiscard]] double mean_in_queue() const noexcept {
    return lambda * mean_wait();
  }
};

}  // namespace pushpull::queueing
