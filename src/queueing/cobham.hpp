#pragma once

#include <cstddef>
#include <vector>

namespace pushpull::queueing {

/// One priority class of a non-preemptive M/M/1 priority queue.
/// Classes are ordered most-important first (index 0 = served first).
struct PriorityClass {
  double lambda = 0.0;  // arrival rate of this class
  double mu = 1.0;      // service rate of this class
};

/// Per-class results of the Cobham analysis.
struct PriorityWaits {
  /// E[W_i]: expected wait in queue (service excluded), index = class.
  std::vector<double> wait;
  /// Overall expected queue wait, Σ λ_i·E[W_i] / λ (the paper's Eq. 18
  /// second line).
  double overall_wait = 0.0;
  /// σ_i = Σ_{j<=i} ρ_j cumulative occupancies; σ_max must be < 1 for the
  /// lowest class to have finite wait.
  std::vector<double> sigma;
  /// W₀ = Σ_j ρ_j/μ_j, the mean residual service seen on arrival.
  double residual = 0.0;
};

/// Cobham's non-preemptive priority formula (the paper's §4.2.2, Eq. 18):
///   E[W_i] = W₀ / ((1 − σ_{i−1})(1 − σ_i)),  W₀ = Σ_j ρ_j/μ_j.
/// W₀ matches the classical Σ λ_j·E[S_j²]/2 under the paper's exponential
/// service assumption. Classes whose σ reaches 1 get infinite waits rather
/// than an exception — overload of low classes is a legitimate regime.
[[nodiscard]] PriorityWaits cobham_waits(
    const std::vector<PriorityClass>& classes);

}  // namespace pushpull::queueing
