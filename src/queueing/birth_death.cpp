#include "queueing/birth_death.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/float_compare.hpp"

namespace pushpull::queueing {

HybridBirthDeath::HybridBirthDeath(double lambda, double mu1, double mu2,
                                   std::size_t capacity)
    : lambda_(lambda), mu1_(mu1), mu2_(mu2), capacity_(capacity) {
  if (lambda <= 0.0 || mu1 <= 0.0 || mu2 <= 0.0) {
    throw std::invalid_argument("HybridBirthDeath: rates must be positive");
  }
  if (capacity == 0) {
    throw std::invalid_argument("HybridBirthDeath: capacity must be >= 1");
  }
}

void HybridBirthDeath::apply_uniformized_step(const std::vector<double>& from,
                                              std::vector<double>& to) const {
  // One application of the uniformized DTMC P = I + Q/Λ. Sparse: each state
  // has at most three successors. (0, 1) and over-capacity states are
  // unreachable and keep zero mass.
  const double uniformization = lambda_ + mu1_ + mu2_;
  std::fill(to.begin(), to.end(), 0.0);
  for (std::size_t i = 0; i <= capacity_; ++i) {
    for (int j = 0; j <= 1; ++j) {
      const double mass = from[index(i, j)];
      if (metrics::exactly_zero(mass)) continue;
      double out_rate = 0.0;
      // Arrival (lost at the truncation boundary: self-loop instead).
      if (i < capacity_) {
        to[index(i + 1, j)] += mass * lambda_ / uniformization;
        out_rate += lambda_;
      }
      if (j == 0 && i >= 1) {
        // Push completes; the queued pull work enters service.
        to[index(i, 1)] += mass * mu1_ / uniformization;
        out_rate += mu1_;
      }
      if (j == 1 && i >= 1) {
        // Pull completes; the next push starts.
        to[index(i - 1, 0)] += mass * mu2_ / uniformization;
        out_rate += mu2_;
      }
      // Self-loop for the residual uniformization mass.
      to[index(i, j)] += mass * (uniformization - out_rate) / uniformization;
    }
  }
}

void HybridBirthDeath::solve(double tolerance, std::size_t max_iterations) {
  const std::size_t n = (capacity_ + 1) * 2;
  std::vector<double> pi(n, 0.0);
  std::vector<double> next(n, 0.0);
  pi[index(0, 0)] = 1.0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    apply_uniformized_step(pi, next);
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      delta += std::abs(next[s] - pi[s]);
    }
    pi.swap(next);
    if (delta < tolerance) break;
  }

  // Normalize (the iteration preserves total mass, but guard rounding).
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  pi_ = std::move(pi);
}

std::vector<double> HybridBirthDeath::transient(double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("HybridBirthDeath: t must be >= 0");
  }
  const std::size_t n = (capacity_ + 1) * 2;
  std::vector<double> v(n, 0.0);
  v[index(0, 0)] = 1.0;  // empty system at t = 0
  if (metrics::exactly_zero(t)) return v;

  const double rate_t = (lambda_ + mu1_ + mu2_) * t;
  std::vector<double> acc(n, 0.0);
  std::vector<double> next(n, 0.0);

  // Poisson(Λt) mixture over powers of the uniformized chain; weights are
  // computed in log space so large Λt cannot underflow.
  double cumulative = 0.0;
  const auto max_terms = static_cast<std::size_t>(
      rate_t + 12.0 * std::sqrt(rate_t + 1.0) + 50.0);
  for (std::size_t k = 0; k <= max_terms; ++k) {
    const double log_w = static_cast<double>(k) * std::log(rate_t) - rate_t -
                         std::lgamma(static_cast<double>(k) + 1.0);
    const double w = std::exp(log_w);
    for (std::size_t s = 0; s < n; ++s) acc[s] += w * v[s];
    cumulative += w;
    if (cumulative > 1.0 - 1e-12) break;
    apply_uniformized_step(v, next);
    v.swap(next);
  }
  // Renormalize the truncated mixture.
  for (double& p : acc) p /= cumulative;
  return acc;
}

double HybridBirthDeath::transient_pull_len(double t) const {
  const std::vector<double> dist = transient(t);
  double mean = 0.0;
  for (std::size_t i = 0; i <= capacity_; ++i) {
    mean += static_cast<double>(i) * (dist[index(i, 0)] + dist[index(i, 1)]);
  }
  return mean;
}

double HybridBirthDeath::distance_to_stationary(double t) const {
  if (pi_.empty()) {
    throw std::logic_error("HybridBirthDeath: call solve() first");
  }
  const std::vector<double> dist = transient(t);
  double tv = 0.0;
  for (std::size_t s = 0; s < pi_.size(); ++s) {
    tv += std::abs(dist[s] - pi_[s]);
  }
  return tv / 2.0;
}

double HybridBirthDeath::p(std::size_t i, int j) const {
  if (pi_.empty()) {
    throw std::logic_error("HybridBirthDeath: call solve() first");
  }
  if (i > capacity_ || j < 0 || j > 1) {
    throw std::out_of_range("HybridBirthDeath: state out of range");
  }
  return pi_[index(i, j)];
}

double HybridBirthDeath::expected_pull_len() const {
  if (pi_.empty()) {
    throw std::logic_error("HybridBirthDeath: call solve() first");
  }
  double mean = 0.0;
  for (std::size_t i = 0; i <= capacity_; ++i) {
    mean += static_cast<double>(i) * (pi_[index(i, 0)] + pi_[index(i, 1)]);
  }
  return mean;
}

double HybridBirthDeath::pull_busy_fraction() const {
  if (pi_.empty()) {
    throw std::logic_error("HybridBirthDeath: call solve() first");
  }
  double busy = 0.0;
  for (std::size_t i = 0; i <= capacity_; ++i) busy += pi_[index(i, 1)];
  return busy;
}

double HybridBirthDeath::paper_eq5_expected_len() const {
  const double n = mean_len_during_push();
  const double r = rho();
  const double ratio = f();
  return (r + ratio) * n + (1.0 - r) -
         (r + ratio) * (1.0 - r - r / ratio) - r * n;
}

double HybridBirthDeath::mean_len_during_push() const {
  if (pi_.empty()) {
    throw std::logic_error("HybridBirthDeath: call solve() first");
  }
  double mean = 0.0;
  for (std::size_t i = 0; i <= capacity_; ++i) {
    mean += static_cast<double>(i) * pi_[index(i, 0)];
  }
  return mean;
}

}  // namespace pushpull::queueing
