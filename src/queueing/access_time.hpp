#pragma once

#include <cstddef>
#include <vector>

#include "catalog/catalog.hpp"
#include "queueing/cobham.hpp"
#include "workload/population.hpp"

namespace pushpull::queueing {

/// Expected delay of a flat (round-robin) push broadcast under cutoff K for
/// a client tuning in at a random instant: half the cycle airtime until the
/// item starts, plus the popularity-weighted item airtime until delivery
/// completes.
[[nodiscard]] double flat_push_delay(const catalog::Catalog& cat,
                                     std::size_t cutoff);

/// Per-class analytical access-time estimate for one cutoff.
struct AccessTimeEstimate {
  std::size_t cutoff = 0;
  double push_delay = 0.0;           // expected delay of a push-item request
  std::vector<double> pull_delay;    // per-class expected delay of a pull request
  std::vector<double> access_time;   // per-class E[T]: mass-weighted mix
  double overall = 0.0;              // class-share-weighted overall E[T]
  double entry_rate = 0.0;           // activation rate of pull-queue entries
  double broadcast_period = 0.0;     // push cycle airtime incl. pull slots
  std::size_t iterations = 0;        // fixed-point iterations used
};

/// Analytical model of the hybrid server's expected access time (the role
/// of the paper's Eq. 19), evaluated per service class.
///
/// The pull side is a non-preemptive priority queue over *pull-queue
/// entries* (one per distinct pending item — transmission of an item clears
/// every pending request for it). The paper plugs per-request arrival rates
/// straight into Cobham, which ignores that batching; we close the gap with
/// a standard renewal fixed point: an item with request rate λ_i activates a
/// queue entry at rate λ_i / (1 + λ_i·T), where T is the entry's mean
/// response time, and T in turn follows from Cobham under the activation
/// load. The effective service time of an entry is its airtime plus one
/// push transmission (the server strictly alternates push and pull).
///
/// Three second-order effects the simulation exhibits are also modeled:
///  * pull interleaving stretches the broadcast period, so the push-side
///    delay is half the *effective* period (push airtime plus the expected
///    pull airtime woven into one cycle), not half the raw cycle;
///  * the class discipline is only applied with weight (1−α) — at α = 1 the
///    importance factor is class-blind — so per-class waits interpolate
///    between the Cobham priority waits and the shared FCFS wait;
///  * a request that finds its item already queued ("joiner") waits roughly
///    half an entry lifetime, while the request that activates the entry
///    waits the full lifetime.
///
/// `paper_eq19` reproduces the formula exactly as printed, for the
/// analytic-vs-simulation comparison of Fig. 7 and the model-error
/// discussion in EXPERIMENTS.md.
class HybridAccessModel {
 public:
  HybridAccessModel(const catalog::Catalog& cat,
                    const workload::ClientPopulation& pop,
                    double arrival_rate);

  /// Self-consistent estimate (recommended). `alpha` is the importance
  /// weight of the scheduler being modeled (0 = pure priority classes,
  /// 1 = class-blind stretch).
  [[nodiscard]] AccessTimeEstimate estimate(std::size_t cutoff,
                                            double alpha = 0.0) const;

  /// The paper's Eq. 19 verbatim:
  ///   E[T] = (1/2μ₁)·Σ_{i≤K} L_i·P_i + E[W_pull]·Σ_{i>K} P_i,
  /// with μ₁ = Σ_{i≤K} P_i·L_i, μ₂ = Σ_{i>K} P_i·L_i and per-class Cobham
  /// waits fed with per-request rates. May be infinite where the
  /// per-request load exceeds 1 — the regime the batching fix addresses.
  [[nodiscard]] double paper_eq19(std::size_t cutoff) const;

  /// Total prioritized cost Σ_j q_j·E[T_j] from the self-consistent model.
  [[nodiscard]] double prioritized_cost(std::size_t cutoff,
                                        double alpha = 0.0) const;

  [[nodiscard]] double arrival_rate() const noexcept { return arrival_rate_; }

 private:
  const catalog::Catalog* cat_;
  const workload::ClientPopulation* pop_;
  double arrival_rate_;
};

}  // namespace pushpull::queueing
