#include "queueing/access_time.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pushpull::queueing {

double flat_push_delay(const catalog::Catalog& cat, std::size_t cutoff) {
  if (cutoff == 0) return 0.0;
  const double cycle = cat.push_cycle_length(cutoff);
  const double mass = cat.push_probability(cutoff);
  if (mass <= 0.0) return cycle / 2.0;
  // Conditional mean airtime of the requested item, P_i-weighted within the
  // push set; delivery completes at the end of the item's transmission.
  const double mean_len = cat.push_service_demand(cutoff) / mass;
  return cycle / 2.0 + mean_len;
}

HybridAccessModel::HybridAccessModel(const catalog::Catalog& cat,
                                     const workload::ClientPopulation& pop,
                                     double arrival_rate)
    : cat_(&cat), pop_(&pop), arrival_rate_(arrival_rate) {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("HybridAccessModel: arrival rate must be > 0");
  }
}

AccessTimeEstimate HybridAccessModel::estimate(std::size_t cutoff,
                                               double alpha) const {
  if (cutoff > cat_->size()) {
    throw std::invalid_argument("HybridAccessModel: cutoff beyond catalog");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("HybridAccessModel: alpha must be in [0,1]");
  }
  const std::size_t num_classes = pop_->num_classes();
  AccessTimeEstimate est;
  est.cutoff = cutoff;
  est.push_delay = flat_push_delay(*cat_, cutoff);
  est.broadcast_period = cat_->push_cycle_length(cutoff);
  est.pull_delay.assign(num_classes, 0.0);
  est.access_time.assign(num_classes, est.push_delay);

  const double pull_mass = cat_->pull_probability(cutoff);
  const double push_mass = cat_->push_probability(cutoff);
  if (pull_mass <= 0.0) {
    // Pure push: every request is answered by the broadcast cycle.
    est.overall = est.push_delay;
    return est;
  }

  // Effective service time of one pull-queue entry: its own airtime plus
  // the push transmission the server interleaves before the next pull.
  const double pull_len = cat_->pull_mean_length(cutoff);
  const double push_len =
      cutoff > 0 ? cat_->push_cycle_length(cutoff) / static_cast<double>(cutoff)
                 : 0.0;
  const double service = pull_len + push_len;

  // Renewal fixed point on the mean entry response time T:
  //   activation rate of item i: a_i = λ_i / (1 + λ_i T)
  //   Cobham waits under Λ = Σ a_i split by class shares
  //   g(T) = class-weighted (wait + service)
  // Λ(T) is strictly decreasing in T, so g(T) is too; the fixed point
  // g(T) = T is unique and bracketed, and bisection is unconditionally
  // stable — unlike naive iteration, which oscillates when the raw request
  // load exceeds the channel and only batching keeps the system stable.
  std::vector<PriorityClass> classes(num_classes);
  PriorityWaits waits;

  const auto entry_rate_at = [&](double t) {
    double rate = 0.0;
    for (std::size_t i = cutoff; i < cat_->size(); ++i) {
      const double li =
          arrival_rate_ * cat_->probability(static_cast<catalog::ItemId>(i));
      rate += li / (1.0 + li * t);
    }
    return rate;
  };
  const auto response_at = [&](double t) {
    const double rate = entry_rate_at(t);
    for (std::size_t c = 0; c < num_classes; ++c) {
      classes[c].lambda =
          rate * pop_->share(static_cast<workload::ClassId>(c));
      classes[c].mu = 1.0 / service;
    }
    waits = cobham_waits(classes);
    double response = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      response += pop_->share(static_cast<workload::ClassId>(c)) *
                  (waits.wait[c] + service);
    }
    return response;  // +inf while the entry load saturates the channel
  };

  // Bracket: below lo the system is overloaded (g = inf > T); batching
  // guarantees g(T) < T for large enough T since Λ(T) ≤ (D−K)/T.
  double lo = service;
  double hi = std::max(
      4.0 * service *
          (static_cast<double>(cat_->size() - cutoff) + 1.0),
      8.0 * service);
  while (!(response_at(hi) < hi) && hi < 1e12) hi *= 2.0;
  for (est.iterations = 1; est.iterations <= 200; ++est.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double g = response_at(mid);
    if (!std::isfinite(g) || g > mid) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1.0 + hi)) break;
  }
  const double t_mean = hi;       // smallest stable response time
  (void)response_at(t_mean);      // leave `waits` evaluated at the solution
  const double entry_rate = entry_rate_at(t_mean);
  est.entry_rate = entry_rate;

  // Push-side refinement: one pull transmission is woven in after every
  // push while the pull queue is non-empty, so the effective broadcast
  // period stretches from C_push to C_push + n_pull·L̄_pull, where n_pull
  // pull slots per period follow from the entry throughput:
  //   unsaturated: period = C_push / (1 − Λ·L̄_pull)
  //   saturated:   one pull after every push.
  if (cutoff > 0) {
    const double cycle = cat_->push_cycle_length(cutoff);
    const double pull_util = entry_rate * pull_len;
    double period = cycle + static_cast<double>(cutoff) * pull_len;  // saturated
    if (pull_util < 1.0) {
      const double unsat = cycle / (1.0 - pull_util);
      period = std::min(period, unsat);
    }
    est.broadcast_period = period;
    const double mean_push_item = push_mass > 0.0
                                      ? cat_->push_service_demand(cutoff) / push_mass
                                      : 0.0;
    est.push_delay = period / 2.0 + mean_push_item;
  }

  // Shared (class-blind) wait: by work conservation this equals the
  // λ-weighted Cobham average when service rates are identical.
  const double shared_wait = waits.overall_wait;

  // Joiner correction: of the λ_pull request stream, Λ requests activate an
  // entry (wait its full lifetime); the rest join an existing entry and
  // wait roughly the residual half.
  const double lambda_pull = arrival_rate_ * pull_mass;
  const double initiator_frac =
      lambda_pull > 0.0 ? std::min(1.0, entry_rate / lambda_pull) : 1.0;
  const double join_scale = initiator_frac + (1.0 - initiator_frac) * 0.5;

  for (std::size_t c = 0; c < num_classes; ++c) {
    // Discipline blend: with weight (1−α) the scheduler honors class
    // priority; with weight α it is class-blind.
    const double entry_wait =
        (1.0 - alpha) * waits.wait[c] + alpha * shared_wait;
    est.pull_delay[c] = join_scale * entry_wait + pull_len;
    est.access_time[c] =
        push_mass * est.push_delay + pull_mass * est.pull_delay[c];
  }
  double overall = 0.0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    overall +=
        pop_->share(static_cast<workload::ClassId>(c)) * est.access_time[c];
  }
  est.overall = overall;
  return est;
}

double HybridAccessModel::paper_eq19(std::size_t cutoff) const {
  if (cutoff > cat_->size()) {
    throw std::invalid_argument("HybridAccessModel: cutoff beyond catalog");
  }
  const double mu1 = cat_->push_service_demand(cutoff);
  const double mu2 = cat_->pull_service_demand(cutoff);
  const double pull_mass = cat_->pull_probability(cutoff);

  double push_term = 0.0;
  if (cutoff > 0 && mu1 > 0.0) {
    // (1/2μ₁)·Σ_{i≤K} L_i·P_i — with the paper's own μ₁ this is exactly 1/2
    // broadcast unit; kept verbatim for fidelity.
    push_term = cat_->push_service_demand(cutoff) / (2.0 * mu1);
  }
  if (pull_mass <= 0.0 || mu2 <= 0.0) return push_term;

  // Per-request Cobham waits with the paper's μ₂ used as a service rate.
  const double lambda_pull = arrival_rate_ * pull_mass;
  std::vector<PriorityClass> classes(pop_->num_classes());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    classes[c].lambda =
        lambda_pull * pop_->share(static_cast<workload::ClassId>(c));
    classes[c].mu = mu2;
  }
  const PriorityWaits waits = cobham_waits(classes);
  return push_term + waits.overall_wait * pull_mass;
}

double HybridAccessModel::prioritized_cost(std::size_t cutoff,
                                           double alpha) const {
  const AccessTimeEstimate est = estimate(cutoff, alpha);
  double cost = 0.0;
  for (std::size_t c = 0; c < est.access_time.size(); ++c) {
    cost +=
        pop_->priority(static_cast<workload::ClassId>(c)) * est.access_time[c];
  }
  return cost;
}

}  // namespace pushpull::queueing
