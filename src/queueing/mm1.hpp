#pragma once

#include <limits>

namespace pushpull::queueing {

/// Closed-form M/M/1 results, used as ground truth when validating the
/// numerical chain solver and the simulator (Little's-law property tests).
struct MM1 {
  double lambda = 0.0;
  double mu = 1.0;

  [[nodiscard]] double rho() const noexcept { return lambda / mu; }
  [[nodiscard]] bool stable() const noexcept { return rho() < 1.0; }

  /// Mean number in system.
  [[nodiscard]] double mean_in_system() const noexcept {
    if (!stable()) return std::numeric_limits<double>::infinity();
    return rho() / (1.0 - rho());
  }
  /// Mean number waiting (excluding the one in service).
  [[nodiscard]] double mean_in_queue() const noexcept {
    if (!stable()) return std::numeric_limits<double>::infinity();
    return rho() * rho() / (1.0 - rho());
  }
  /// Mean sojourn time (wait + service).
  [[nodiscard]] double mean_sojourn() const noexcept {
    if (!stable()) return std::numeric_limits<double>::infinity();
    return 1.0 / (mu - lambda);
  }
  /// Mean time waiting before service starts.
  [[nodiscard]] double mean_wait() const noexcept {
    if (!stable()) return std::numeric_limits<double>::infinity();
    return rho() / (mu - lambda);
  }
  /// Stationary probability of an empty system.
  [[nodiscard]] double p0() const noexcept { return 1.0 - rho(); }
};

}  // namespace pushpull::queueing
