#include "queueing/two_class_chain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/float_compare.hpp"

namespace pushpull::queueing {

TwoClassPriorityChain::TwoClassPriorityChain(double lambda1, double lambda2,
                                             double mu, std::size_t capacity)
    : lambda1_(lambda1), lambda2_(lambda2), mu_(mu), capacity_(capacity) {
  if (lambda1 <= 0.0 || lambda2 <= 0.0 || mu <= 0.0) {
    throw std::invalid_argument(
        "TwoClassPriorityChain: rates must be positive");
  }
  if (capacity == 0) {
    throw std::invalid_argument(
        "TwoClassPriorityChain: capacity must be >= 1");
  }
}

void TwoClassPriorityChain::apply_step(const std::vector<double>& from,
                                       std::vector<double>& to) const {
  const double uniformization = lambda1_ + lambda2_ + mu_;
  std::fill(to.begin(), to.end(), 0.0);
  for (std::size_t m = 0; m <= capacity_; ++m) {
    for (std::size_t n = 0; n <= capacity_; ++n) {
      for (int r = 0; r <= 2; ++r) {
        const double mass = from[index(m, n, r)];
        if (metrics::exactly_zero(mass)) continue;
        double out_rate = 0.0;

        // Class-1 arrival. If the server was idle it starts service
        // immediately (the arrival is class 1, so r' = 1).
        if (m < capacity_) {
          const int r_next = (r == 0) ? 1 : r;
          to[index(m + 1, n, r_next)] += mass * lambda1_ / uniformization;
          out_rate += lambda1_;
        }
        // Class-2 arrival.
        if (n < capacity_) {
          const int r_next = (r == 0) ? 2 : r;
          to[index(m, n + 1, r_next)] += mass * lambda2_ / uniformization;
          out_rate += lambda2_;
        }
        // Service completion; non-preemptive head-of-line pick: class 1 if
        // any remains, else class 2, else idle.
        if (r == 1) {
          const std::size_t m_left = m - 1;
          const int r_next = m_left > 0 ? 1 : (n > 0 ? 2 : 0);
          to[index(m_left, n, r_next)] += mass * mu_ / uniformization;
          out_rate += mu_;
        } else if (r == 2) {
          const std::size_t n_left = n - 1;
          const int r_next = m > 0 ? 1 : (n_left > 0 ? 2 : 0);
          to[index(m, n_left, r_next)] += mass * mu_ / uniformization;
          out_rate += mu_;
        }

        to[index(m, n, r)] +=
            mass * (uniformization - out_rate) / uniformization;
      }
    }
  }
}

void TwoClassPriorityChain::solve(double tolerance,
                                  std::size_t max_iterations) {
  const std::size_t size = (capacity_ + 1) * (capacity_ + 1) * 3;
  std::vector<double> pi(size, 0.0);
  std::vector<double> next(size, 0.0);
  pi[index(0, 0, 0)] = 1.0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    apply_step(pi, next);
    double delta = 0.0;
    for (std::size_t s = 0; s < size; ++s) delta += std::abs(next[s] - pi[s]);
    pi.swap(next);
    if (delta < tolerance) break;
  }
  double total = 0.0;
  for (double v : pi) total += v;
  for (double& v : pi) v /= total;
  pi_ = std::move(pi);
}

void TwoClassPriorityChain::require_solved() const {
  if (pi_.empty()) {
    throw std::logic_error("TwoClassPriorityChain: call solve() first");
  }
}

double TwoClassPriorityChain::p(std::size_t m, std::size_t n,
                                int serving) const {
  require_solved();
  if (m > capacity_ || n > capacity_ || serving < 0 || serving > 2) {
    throw std::out_of_range("TwoClassPriorityChain: state out of range");
  }
  return pi_[index(m, n, serving)];
}

double TwoClassPriorityChain::mean_class1() const {
  require_solved();
  double mean = 0.0;
  for (std::size_t m = 0; m <= capacity_; ++m) {
    for (std::size_t n = 0; n <= capacity_; ++n) {
      for (int r = 0; r <= 2; ++r) {
        mean += static_cast<double>(m) * pi_[index(m, n, r)];
      }
    }
  }
  return mean;
}

double TwoClassPriorityChain::mean_class2() const {
  require_solved();
  double mean = 0.0;
  for (std::size_t m = 0; m <= capacity_; ++m) {
    for (std::size_t n = 0; n <= capacity_; ++n) {
      for (int r = 0; r <= 2; ++r) {
        mean += static_cast<double>(n) * pi_[index(m, n, r)];
      }
    }
  }
  return mean;
}

double TwoClassPriorityChain::sojourn_class1() const {
  return mean_class1() / lambda1_;
}

double TwoClassPriorityChain::sojourn_class2() const {
  return mean_class2() / lambda2_;
}

double TwoClassPriorityChain::queue_wait_class1() const {
  return sojourn_class1() - 1.0 / mu_;
}

double TwoClassPriorityChain::queue_wait_class2() const {
  return sojourn_class2() - 1.0 / mu_;
}

double TwoClassPriorityChain::idle_probability() const {
  require_solved();
  return pi_[index(0, 0, 0)];
}

}  // namespace pushpull::queueing
