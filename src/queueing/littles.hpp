#pragma once

namespace pushpull::queueing {

/// Little's law helpers: L = λ·W. These tie the simulator's time-weighted
/// queue lengths to its per-request waits in the property tests, and back
/// the paper's step from L₁/L₂ to E[W₁]/E[W₂] in §4.2.1.
[[nodiscard]] constexpr double littles_wait(double mean_in_system,
                                            double arrival_rate) noexcept {
  return arrival_rate > 0.0 ? mean_in_system / arrival_rate : 0.0;
}

[[nodiscard]] constexpr double littles_length(double mean_wait,
                                              double arrival_rate) noexcept {
  return mean_wait * arrival_rate;
}

/// Server utilization of an M/G/1-like station.
[[nodiscard]] constexpr double utilization(double arrival_rate,
                                           double mean_service) noexcept {
  return arrival_rate * mean_service;
}

}  // namespace pushpull::queueing
