#pragma once

#include <cstddef>
#include <vector>

namespace pushpull::queueing {

/// The paper's §4.1 birth–death model of the hybrid system (Fig. 2).
///
/// State (i, j): i pending pull items, j = 0 while a push transmission is in
/// service, j = 1 while a pull transmission is in service. Transitions:
///   (i, j) → (i+1, j)  at rate λ   (pull arrival)
///   (i, 0) → (i, 1)    at rate μ₁  (push completes; pull takes over), i ≥ 1
///   (i, 1) → (i−1, 0)  at rate μ₂  (pull completes; next push starts)
/// State (0, 0) only leaves via an arrival, matching the paper's first
/// balance equation p(0,0)·λ = p(1,1)·μ₂.
///
/// The chain is solved two ways: the paper's closed forms (idle probability
/// p(0,0) = 1 − ρ − ρ/f) and an exact numerical stationary solution of the
/// truncated chain (capacity C), which also yields E[L_pull] without the
/// under-determined 𝒩 term of Eq. 5.
class HybridBirthDeath {
 public:
  /// λ: pull arrival rate; μ₁/μ₂: push/pull service rates; capacity: queue
  /// truncation C (arrivals beyond it are dropped by the model).
  HybridBirthDeath(double lambda, double mu1, double mu2,
                   std::size_t capacity);

  [[nodiscard]] double lambda() const noexcept { return lambda_; }
  [[nodiscard]] double mu1() const noexcept { return mu1_; }
  [[nodiscard]] double mu2() const noexcept { return mu2_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] double rho() const noexcept { return lambda_ / mu2_; }
  [[nodiscard]] double f() const noexcept { return mu1_ / mu2_; }

  /// The paper's closed-form idle probability: 1 − ρ − ρ/f. Can be negative
  /// when the pull system is overloaded — callers should check stable().
  [[nodiscard]] double closed_form_idle() const noexcept {
    return 1.0 - rho() - rho() / f();
  }
  [[nodiscard]] bool stable() const noexcept {
    return closed_form_idle() > 0.0;
  }

  /// Solves the truncated chain's stationary distribution numerically
  /// (power iteration on the uniformized transition matrix).
  void solve(double tolerance = 1e-13, std::size_t max_iterations = 500000);

  /// Transient state distribution at virtual time `t`, starting from the
  /// empty system (0, 0), via uniformization: p(t) = Σ_k Pois(Λt; k)·π₀Pᵏ.
  /// Used to size warm-up periods — the distance to the stationary solution
  /// quantifies how long the simulated system "remembers" its empty start.
  /// Returns the flattened distribution indexed like p(i, j) = [2i + j].
  [[nodiscard]] std::vector<double> transient(double t) const;

  /// E[pull length] under the transient distribution at time `t`.
  [[nodiscard]] double transient_pull_len(double t) const;

  /// Total-variation distance between the transient distribution at `t`
  /// and the stationary solution. Requires solve().
  [[nodiscard]] double distance_to_stationary(double t) const;

  /// p(i, j). Requires solve().
  [[nodiscard]] double p(std::size_t i, int j) const;

  /// Stationary p(0, 0) from the numerical solution.
  [[nodiscard]] double idle_probability() const { return p(0, 0); }

  /// E[i] — expected number of pending pull items.
  [[nodiscard]] double expected_pull_len() const;

  /// Fraction of time the pull side is in service (Σ_i p(i, 1)); the paper
  /// equates this with ρ.
  [[nodiscard]] double pull_busy_fraction() const;

  /// E[i | j = 0] · P(j = 0)-style term: the paper's 𝒩, the average pull
  /// queue length while a push is in service.
  [[nodiscard]] double mean_len_during_push() const;

  /// The paper's Eq. 5 *verbatim*, with 𝒩 taken from the numerical
  /// solution:
  ///   E[L_pull] = (ρ+f)·𝒩 + (1−ρ) − (ρ+f)(1−ρ−ρ/f) − ρ𝒩.
  /// Documented divergence: this expression is NEGATIVE at every stable
  /// operating point we evaluated (see test_transient.cpp and
  /// EXPERIMENTS.md) — the paper's z-transform algebra does not balance.
  /// expected_pull_len() from the numerical chain is the library's source
  /// of truth. Requires solve().
  [[nodiscard]] double paper_eq5_expected_len() const;

 private:
  void apply_uniformized_step(const std::vector<double>& from,
                              std::vector<double>& to) const;

  [[nodiscard]] std::size_t index(std::size_t i, int j) const noexcept {
    return i * 2 + static_cast<std::size_t>(j);
  }

  double lambda_;
  double mu1_;
  double mu2_;
  std::size_t capacity_;
  std::vector<double> pi_;  // stationary distribution, empty until solve()
};

}  // namespace pushpull::queueing
