#include "queueing/cobham.hpp"

#include <limits>
#include <stdexcept>

namespace pushpull::queueing {

PriorityWaits cobham_waits(const std::vector<PriorityClass>& classes) {
  if (classes.empty()) {
    throw std::invalid_argument("cobham_waits: at least one class");
  }
  PriorityWaits out;
  out.wait.resize(classes.size());
  out.sigma.resize(classes.size());

  double residual = 0.0;
  double sigma = 0.0;
  double total_lambda = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    if (c.lambda < 0.0 || c.mu <= 0.0) {
      throw std::invalid_argument(
          "cobham_waits: lambda must be >= 0 and mu > 0");
    }
    const double rho = c.lambda / c.mu;
    residual += rho / c.mu;
    sigma += rho;
    out.sigma[i] = sigma;
    total_lambda += c.lambda;
  }
  out.residual = residual;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  double weighted = 0.0;
  double sigma_prev = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const double denom = (1.0 - sigma_prev) * (1.0 - out.sigma[i]);
    out.wait[i] = denom > 0.0 ? residual / denom : kInf;
    if (classes[i].lambda > 0.0) weighted += classes[i].lambda * out.wait[i];
    sigma_prev = out.sigma[i];
  }
  out.overall_wait = total_lambda > 0.0 ? weighted / total_lambda : 0.0;
  return out;
}

}  // namespace pushpull::queueing
