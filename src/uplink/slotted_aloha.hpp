#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.hpp"

namespace pushpull::uplink {

/// Slotted-ALOHA uplink (back-channel) contention model.
///
/// The paper inherits Acharya's hybrid architecture, where clients send
/// pull requests over a *limited* shared back-channel. This module makes
/// that channel explicit: requests contend in time slots; a slot carrying
/// exactly one transmission succeeds, two or more collide and the losers
/// retransmit in each later slot with probability `retry_probability`.
/// The result is a delayed (and reordered) copy of the request trace — the
/// stream the server actually sees — plus channel statistics.
///
/// Classic theory for validation: with Poisson offered load G per slot,
/// throughput is S = G·e^{−G}, maximized at S ≈ 0.368 when G = 1.
struct AlohaConfig {
  /// Airtime of one uplink slot in broadcast time units. Requests are tiny
  /// control packets, so slots are short relative to item airtimes.
  double slot_duration = 0.1;
  /// Probability that a backlogged request transmits in a given slot.
  /// The simulator stabilizes this (pseudo-Bayesian rule): the effective
  /// probability is min(retry_probability, 1/backlog), so the channel
  /// drains at ~1/e per slot instead of death-spiraling under overload.
  double retry_probability = 0.1;
  /// New arrivals first transmit in the slot after their generation
  /// instant; set false to make them start backlogged (p-persistent).
  bool immediate_first_attempt = true;
  std::uint64_t seed = 1;
};

/// Outcome of pushing one trace through the uplink.
struct AlohaResult {
  workload::Trace delayed_trace;  // arrival = uplink success instant
  std::uint64_t slots_elapsed = 0;
  std::uint64_t successful_slots = 0;
  std::uint64_t collision_slots = 0;
  std::uint64_t idle_slots = 0;
  double mean_uplink_delay = 0.0;  // generation → successful transmission
  double max_uplink_delay = 0.0;

  /// Fraction of busy slots that collided.
  [[nodiscard]] double collision_ratio() const noexcept {
    const std::uint64_t busy = successful_slots + collision_slots;
    return busy ? static_cast<double>(collision_slots) /
                      static_cast<double>(busy)
                : 0.0;
  }
  /// Successes per slot — the classic ALOHA throughput S.
  [[nodiscard]] double throughput() const noexcept {
    return slots_elapsed ? static_cast<double>(successful_slots) /
                               static_cast<double>(slots_elapsed)
                         : 0.0;
  }
};

/// Simulates the contention of every request in `trace` on the slotted
/// uplink and returns the delayed trace the server receives.
[[nodiscard]] AlohaResult simulate_uplink(const workload::Trace& trace,
                                          const AlohaConfig& config);

/// The infinite-population slotted-ALOHA throughput law S(G) = G·e^{−G}.
[[nodiscard]] double aloha_throughput(double offered_load_per_slot) noexcept;

}  // namespace pushpull::uplink
