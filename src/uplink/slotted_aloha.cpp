#include "uplink/slotted_aloha.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/stream.hpp"
#include "rng/uniform.hpp"

namespace pushpull::uplink {

double aloha_throughput(double offered_load_per_slot) noexcept {
  return offered_load_per_slot * std::exp(-offered_load_per_slot);
}

AlohaResult simulate_uplink(const workload::Trace& trace,
                            const AlohaConfig& config) {
  if (config.slot_duration <= 0.0) {
    throw std::invalid_argument("simulate_uplink: slot duration must be > 0");
  }
  if (config.retry_probability <= 0.0 || config.retry_probability > 1.0) {
    throw std::invalid_argument(
        "simulate_uplink: retry probability must be in (0, 1]");
  }

  AlohaResult result;
  if (trace.empty()) return result;

  rng::StreamFactory streams(config.seed);
  auto eng = streams.stream("aloha");

  struct Pending {
    std::size_t trace_index;
    bool first_attempt;
  };
  std::vector<Pending> backlog;
  std::vector<workload::Request> delivered;
  delivered.reserve(trace.size());

  double delay_sum = 0.0;
  std::size_t next_arrival = 0;
  std::uint64_t slot = 0;
  // Start the slot grid just before the first request.
  const auto first_slot = static_cast<std::uint64_t>(
      trace[0].arrival / config.slot_duration);
  slot = first_slot;

  std::vector<std::size_t> transmitting;
  while (delivered.size() < trace.size()) {
    const double slot_start = static_cast<double>(slot) * config.slot_duration;
    const double slot_end = slot_start + config.slot_duration;

    // Admit requests generated before this slot starts.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= slot_start) {
      backlog.push_back(Pending{next_arrival, true});
      ++next_arrival;
    }

    // Everyone decides independently whether to transmit in this slot.
    // Stabilized ALOHA: the effective retry probability is capped at
    // 1/backlog (the pseudo-Bayesian rule), which keeps the per-slot
    // success probability near 1/e even under overload — without it a
    // large backlog with a fixed retry probability collides forever and
    // the channel death-spirals instead of draining.
    const double p_retry = std::min(
        config.retry_probability,
        backlog.empty() ? 1.0 : 1.0 / static_cast<double>(backlog.size()));
    transmitting.clear();
    for (std::size_t b = 0; b < backlog.size(); ++b) {
      const bool transmit =
          (backlog[b].first_attempt && config.immediate_first_attempt) ||
          rng::uniform01(eng) < p_retry;
      if (transmit) transmitting.push_back(b);
      backlog[b].first_attempt = false;
    }

    if (transmitting.size() == 1) {
      ++result.successful_slots;
      const std::size_t b = transmitting.front();
      const auto& original = trace[backlog[b].trace_index];
      workload::Request arrived = original;
      arrived.arrival = slot_end;  // the server hears it at slot end
      const double delay = slot_end - original.arrival;
      delay_sum += delay;
      result.max_uplink_delay = std::max(result.max_uplink_delay, delay);
      delivered.push_back(arrived);
      backlog.erase(backlog.begin() + static_cast<std::ptrdiff_t>(b));
    } else if (transmitting.size() > 1) {
      ++result.collision_slots;
    } else {
      ++result.idle_slots;
    }
    ++slot;
  }

  result.slots_elapsed = slot - first_slot;
  result.mean_uplink_delay =
      delay_sum / static_cast<double>(delivered.size());

  // Successes happen in slot order, but requests *within* a slot boundary
  // could tie; arrivals are non-decreasing by construction.
  std::sort(delivered.begin(), delivered.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival < b.arrival;
            });
  result.delayed_trace = workload::Trace(std::move(delivered));
  return result;
}

}  // namespace pushpull::uplink
