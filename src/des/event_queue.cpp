#include "des/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "des/calendar_queue.hpp"

namespace pushpull::des {

EventQueue::EventQueue() = default;

EventQueue::EventQueue(EventQueueKind kind) {
  if (kind == EventQueueKind::kCalendar) {
    calendar_ = std::make_unique<CalendarQueue>();
  }
}

EventQueue::EventQueue(EventQueue&&) noexcept = default;
EventQueue& EventQueue::operator=(EventQueue&&) noexcept = default;
EventQueue::~EventQueue() = default;

bool EventQueue::empty() const noexcept {
  return calendar_ ? calendar_->empty() : live_count_ == 0;
}

std::size_t EventQueue::size() const noexcept {
  return calendar_ ? calendar_->size() : live_count_;
}

void EventQueue::push(Event event) {
  if (calendar_) {
    calendar_->push(std::move(event));
    return;
  }
  if (pending_.contains(event.id)) {
    throw std::logic_error("EventQueue: duplicate event id " +
                           std::to_string(event.id));
  }
  pending_.insert(event.id);
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  ++live_count_;
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    heap_.pop_back();
  }
}

Event EventQueue::pop() {
  if (calendar_) return calendar_->pop();
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: pop() on an empty queue");
  }
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(event.id);
  --live_count_;
  return event;
}

SimTime EventQueue::next_time() const {
  if (calendar_) return calendar_->next_time();
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: next_time() on an empty queue");
  }
  return heap_.front().time;
}

bool EventQueue::cancel(EventId id) {
  if (calendar_) return calendar_->cancel(id);
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::clear() {
  if (calendar_) {
    calendar_->clear();
    return;
  }
  heap_.clear();
  pending_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

}  // namespace pushpull::des
