#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pushpull::des {

/// Move-only `void()` callable with `InlineBytes` of in-object storage.
///
/// The event kernel schedules millions of closures per run; wrapping each
/// in std::function costs one heap allocation whenever the capture exceeds
/// the library's (small, implementation-defined) buffer — which every
/// transmission-end closure does. SmallFun sizes the buffer to the
/// kernel's real captures so events live entirely inside the pending-event
/// containers (vector heap / calendar buckets): no per-event allocation,
/// no pointer chase on dispatch.
///
/// A callable is stored inline when it fits and is nothrow-move-
/// constructible (moves happen during vector reallocation, where a throw
/// could not be recovered); anything else falls back to a single heap
/// cell, preserving std::function's universality. Unlike std::function,
/// move-only callables (captures holding unique_ptr or moved-from
/// aggregates) are accepted.
template <std::size_t InlineBytes>
class SmallFun {
 public:
  SmallFun() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFun> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  SmallFun(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = &invoke_inline<Fn>;
      manage_ = &manage_inline<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = &invoke_heap<Fn>;
      manage_ = &manage_heap<Fn>;
    }
  }

  SmallFun(SmallFun&& other) noexcept
      : invoke_(other.invoke_), manage_(other.manage_) {
    if (manage_ != nullptr) manage_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  SmallFun& operator=(SmallFun&& other) noexcept {
    if (this == &other) return *this;
    reset();
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    return *this;
  }

  SmallFun(const SmallFun&) = delete;
  SmallFun& operator=(const SmallFun&) = delete;

  ~SmallFun() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

 private:
  void reset() noexcept {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // One manage function per stored type: src != nullptr relocates src's
  // callable into dst (destroying src's), src == nullptr destroys dst's.
  template <typename Fn>
  static void invoke_inline(void* p) {
    (*std::launder(reinterpret_cast<Fn*>(p)))();
  }
  template <typename Fn>
  static void manage_inline(void* dst, void* src) noexcept {
    if (src != nullptr) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    } else {
      std::launder(reinterpret_cast<Fn*>(dst))->~Fn();
    }
  }
  template <typename Fn>
  static void invoke_heap(void* p) {
    (**std::launder(reinterpret_cast<Fn**>(p)))();
  }
  template <typename Fn>
  static void manage_heap(void* dst, void* src) noexcept {
    if (src != nullptr) {
      ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
    } else {
      delete *std::launder(reinterpret_cast<Fn**>(dst));
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(void*, void*) = nullptr;
};

}  // namespace pushpull::des
