#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "des/event.hpp"
#include "des/event_queue.hpp"
#include "obs/trace.hpp"

namespace pushpull::des {

/// Sequential discrete-event simulator: a virtual clock plus a pending-event
/// set. Components schedule closures at absolute or relative virtual times;
/// `run` dispatches them in (time, insertion) order.
///
/// The kernel is deliberately minimal — model-level concepts (servers,
/// queues, channels) live in the modules that own them, which keeps the
/// kernel reusable for every experiment in this repository.
class Simulator {
 public:
  static constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();

  Simulator() = default;
  /// Selects the pending-event-set backend (see EventQueueKind). The
  /// default binary heap is the reference; kCalendar trades it for O(1)
  /// amortized operations with bit-identical dispatch order.
  explicit Simulator(EventQueueKind kind) : queue_(kind) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t dispatched_events() const noexcept {
    return dispatched_;
  }
  [[nodiscard]] std::uint64_t scheduled_events() const noexcept {
    return scheduled_;
  }
  [[nodiscard]] std::uint64_t cancelled_events() const noexcept {
    return cancelled_;
  }

  /// Installs (or, with a default-constructed Tracer, removes) the trace
  /// handle. The kernel emits only bounded `queue`-category "evq_level"
  /// marks when the pending-event set first reaches each power-of-two
  /// size from 1024 up — a high-water profile of event-set growth that
  /// costs one comparison per schedule when tracing is off.
  void set_tracer(obs::Tracer tracer) noexcept { tracer_ = tracer; }

  /// Times a popped event carried a timestamp before the current clock.
  /// step() still throws on the first one, so this reads 0 for any run that
  /// completed — the counter exists so harnesses can assert the property
  /// machine-verifiably instead of trusting the kernel.
  [[nodiscard]] std::uint64_t order_violations() const noexcept {
    return order_violations_;
  }

  /// Schedules `action` at absolute virtual time `when` (>= now()).
  /// A past or NaN time throws std::invalid_argument — scheduling into the
  /// past would silently rewind the clock on dispatch, so the invariant is
  /// enforced in every build type, not just with asserts.
  template <typename Fn>
  EventId schedule_at(SimTime when, Fn&& action) {
    if (!(when >= now_)) {
      throw std::invalid_argument("Simulator: schedule_at(" +
                                  std::to_string(when) +
                                  ") is in the past (now = " +
                                  std::to_string(now_) + ") or NaN");
    }
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::forward<Fn>(action)});
    ++scheduled_;
    if (queue_.size() >= evq_level_mark_) {
      tracer_.emit<obs::Category::kQueue>(
          now_, "evq_level", queue_.size(), 0,
          static_cast<double>(evq_level_mark_));
      evq_level_mark_ *= 2;
    }
    return id;
  }

  /// Schedules `action` after a non-negative delay.
  template <typename Fn>
  EventId schedule_in(SimTime delay, Fn&& action) {
    return schedule_at(now_ + delay, std::forward<Fn>(action));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id) {
    const bool ok = queue_.cancel(id);
    if (ok) ++cancelled_;
    return ok;
  }

  /// Dispatches the next event, advancing the clock to it. Returns false if
  /// no event is pending.
  bool step();

  /// Runs until the event set drains or the clock would pass `horizon`.
  /// Events scheduled exactly at the horizon still fire.
  void run_until(SimTime horizon);

  /// Runs until the event set drains.
  void run() { run_until(kForever); }

  /// Stops the current run_until() loop after the in-flight event returns.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Drops all pending events and resets the clock; dispatched count is kept.
  void reset();

 private:
  static constexpr std::size_t kEvqLevelBase = 1024;

  EventQueue queue_;
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t order_violations_ = 0;
  bool stop_requested_ = false;
  obs::Tracer tracer_;
  std::size_t evq_level_mark_ = kEvqLevelBase;
};

}  // namespace pushpull::des
