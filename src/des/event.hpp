#pragma once

#include <cstdint>

#include "des/small_fun.hpp"

namespace pushpull::des {

/// Simulation virtual time. Broadcast "time units" in the paper's sense: one
/// unit is the airtime of a length-1 item.
using SimTime = double;

/// Monotone id assigned to each scheduled event; doubles as the FIFO
/// tie-breaker for events scheduled at equal times and as the cancellation
/// handle.
using EventId = std::uint64_t;

/// Closure storage for event actions. 104 bytes covers the kernel's largest
/// capture (the pull-transmission closure: server pointer + epoch + a full
/// PullEntry + class + demand) so no scheduling path allocates per event.
using EventAction = SmallFun<104>;

/// A scheduled occurrence: at `time`, run `action`. Move-only: the action
/// lives inline, so copying an event would mean copying an arbitrary
/// closure — nothing in the kernel needs that, and forbidding it is what
/// lets move-only captures (moved-in pull entries) be scheduled directly.
struct Event {
  SimTime time = 0.0;
  EventId id = 0;
  EventAction action;
};

/// Heap ordering: earliest time first; FIFO among equal times.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace pushpull::des
