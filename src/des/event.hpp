#pragma once

#include <cstdint>
#include <functional>

namespace pushpull::des {

/// Simulation virtual time. Broadcast "time units" in the paper's sense: one
/// unit is the airtime of a length-1 item.
using SimTime = double;

/// Monotone id assigned to each scheduled event; doubles as the FIFO
/// tie-breaker for events scheduled at equal times and as the cancellation
/// handle.
using EventId = std::uint64_t;

/// A scheduled occurrence: at `time`, run `action`.
struct Event {
  SimTime time = 0.0;
  EventId id = 0;
  std::function<void()> action;
};

/// Heap ordering: earliest time first; FIFO among equal times.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace pushpull::des
