#pragma once

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

#include "des/event.hpp"

namespace pushpull::des {

class CalendarQueue;

/// Pending-event set implementation, chosen at construction.
///
/// kBinaryHeap is the reference structure: a binary min-heap on (time, id),
/// O(log n) per operation, trivially correct. kCalendar is the O(1)-amortized
/// calendar queue (see calendar_queue.hpp), proven pop-order-identical to the
/// heap by the differential suite in tests/test_event_queue_diff.cpp.
enum class EventQueueKind { kBinaryHeap, kCalendar };

/// Pending-event set: (time, id) ordering with lazy cancellation.
///
/// The default backend is a binary min-heap; cancelled events stay in the
/// heap but are skipped on pop, with the cancelled-id set purged as they
/// surface. This keeps cancel O(1) and pop amortized O(log n), which is the
/// right trade for simulations where cancellations are rare (timeouts that
/// usually fire). A calendar-queue backend (kCalendar) with identical
/// observable behavior and O(1) amortized push/pop can be selected at
/// construction for large pending sets.
class EventQueue {
 public:
  EventQueue();  // binary heap
  explicit EventQueue(EventQueueKind kind);
  EventQueue(EventQueue&&) noexcept;
  EventQueue& operator=(EventQueue&&) noexcept;
  ~EventQueue();

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Inserts an event; its id must be unique (the Simulator guarantees this).
  void push(Event event);

  /// Removes and returns the earliest live event. Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Time of the earliest live event. Precondition: !empty().
  /// Logically const: the lazy purge of cancelled entries it may trigger is
  /// invisible to callers (live set and observable order are unchanged), so
  /// the backend internals are `mutable` rather than forcing non-const
  /// access for a pure query.
  [[nodiscard]] SimTime next_time() const;

  /// Marks an event as cancelled. Returns false if the id is not pending
  /// (already fired, already cancelled, or never scheduled).
  bool cancel(EventId id);

  void clear();

 private:
  void drop_cancelled_top() const;

  // mutable: next_time() purges cancelled entries lazily without changing
  // any observable state (see its doc comment).
  mutable std::vector<Event> heap_;
  std::unordered_set<EventId> pending_;             // live, not-yet-fired ids
  mutable std::unordered_set<EventId> cancelled_;   // cancelled, still in heap_
  std::size_t live_count_ = 0;
  std::unique_ptr<CalendarQueue> calendar_;  // engaged iff kind == kCalendar
};

}  // namespace pushpull::des
