#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "des/event.hpp"

namespace pushpull::des {

/// Pending-event set: a binary min-heap on (time, id) with lazy cancellation.
///
/// Cancelled events stay in the heap but are skipped on pop; the cancelled-id
/// set is purged as they surface. This keeps cancel O(1) and pop amortized
/// O(log n), which is the right trade for simulations where cancellations are
/// rare (timeouts that usually fire).
class EventQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// Inserts an event; its id must be unique (the Simulator guarantees this).
  void push(Event event);

  /// Removes and returns the earliest live event. Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Time of the earliest live event. Precondition: !empty().
  /// Logically const: the lazy purge of cancelled heap entries it may
  /// trigger is invisible to callers (live set and observable order are
  /// unchanged), so the heap internals are `mutable` rather than forcing
  /// non-const access for a pure query.
  [[nodiscard]] SimTime next_time() const;

  /// Marks an event as cancelled. Returns false if the id is not pending
  /// (already fired, already cancelled, or never scheduled).
  bool cancel(EventId id);

  void clear();

 private:
  void drop_cancelled_top() const;

  // mutable: next_time() purges cancelled entries lazily without changing
  // any observable state (see its doc comment).
  mutable std::vector<Event> heap_;
  std::unordered_set<EventId> pending_;             // live, not-yet-fired ids
  mutable std::unordered_set<EventId> cancelled_;   // cancelled, still in heap_
  std::size_t live_count_ = 0;
};

}  // namespace pushpull::des
