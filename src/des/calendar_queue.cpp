#include "des/calendar_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace pushpull::des {

namespace {

/// Strict total order on (time, id) — the heap's EventAfter, inverted.
[[nodiscard]] bool before(SimTime ta, EventId ia, SimTime tb,
                          EventId ib) noexcept {
  if (ta != tb) return ta < tb;
  return ia < ib;
}

}  // namespace

std::uint64_t CalendarQueue::year_of(SimTime t) const noexcept {
  const double y = t / width_;
  // Negative times (never produced by the Simulator, but legal for direct
  // queue users) collapse into year 0; the in-year minimum scan still
  // orders them correctly against everything else in that year.
  if (!(y > 0.0)) return 0;
  if (y >= static_cast<double>(kOverflowYear)) return kOverflowYear;
  return static_cast<std::uint64_t>(y);
}

void CalendarQueue::purge_bucket(std::vector<Event>& bucket) const {
  for (std::size_t i = 0; i < bucket.size();) {
    if (cancelled_.contains(bucket[i].id)) {
      cancelled_.erase(bucket[i].id);
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      --bucketed_;
    } else {
      ++i;
    }
  }
}

void CalendarQueue::push(Event event) {
  if (pending_.contains(event.id)) {
    throw std::logic_error("EventQueue: duplicate event id " +
                           std::to_string(event.id));
  }
  pending_.insert(event.id);
  ++live_count_;
  const SimTime time = event.time;
  const EventId id = event.id;
  const std::uint64_t year = year_of(time);
  Located loc;
  if (year >= kOverflowYear) {
    loc.in_overflow = true;
    loc.index = overflow_.size();
    overflow_.push_back(std::move(event));
    ++overflowed_;
  } else {
    if (year < cur_year_) cur_year_ = year;
    loc.bucket = static_cast<std::size_t>(year % buckets_.size());
    loc.index = buckets_[loc.bucket].size();
    buckets_[loc.bucket].push_back(std::move(event));
    ++bucketed_;
  }
  if (min_valid_ && before(time, id, min_time_, min_id_)) {
    min_loc_ = loc;
    min_time_ = time;
    min_id_ = id;
  }
  maybe_resize();
}

CalendarQueue::Located CalendarQueue::find_min() const {
  if (min_valid_) return min_loc_;
  Located best;
  bool found = false;
  if (bucketed_ > 0) {
    // Year-by-year scan: the first year with a live event holds the global
    // minimum among bucketed events, because years partition the timeline.
    const std::size_t nb = buckets_.size();
    for (std::size_t k = 0; k < nb && bucketed_ > 0; ++k) {
      const std::uint64_t year = cur_year_ + k;
      auto& bucket = buckets_[static_cast<std::size_t>(year % nb)];
      purge_bucket(bucket);
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (year_of(bucket[i].time) != year) continue;
        if (!found || before(bucket[i].time, bucket[i].id,
                             buckets_[best.bucket][best.index].time,
                             buckets_[best.bucket][best.index].id)) {
          best = Located{false, static_cast<std::size_t>(year % nb), i};
          found = true;
        }
      }
      if (found) {
        cur_year_ = year;
        break;
      }
    }
    if (!found && bucketed_ > 0) {
      // Sparse calendar: nothing within one full wrap of years. Direct
      // minimum search over everything, then jump the current year to it.
      for (std::size_t b = 0; b < nb; ++b) {
        purge_bucket(buckets_[b]);
        for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
          if (!found || before(buckets_[b][i].time, buckets_[b][i].id,
                               buckets_[best.bucket][best.index].time,
                               buckets_[best.bucket][best.index].id)) {
            best = Located{false, b, i};
            found = true;
          }
        }
      }
      if (found) {
        cur_year_ = year_of(buckets_[best.bucket][best.index].time);
      }
    }
  }
  if (!found) {
    // Only overflow events remain live (their times sort after any
    // bucketed time by construction).
    for (std::size_t i = 0; i < overflow_.size();) {
      if (cancelled_.contains(overflow_[i].id)) {
        cancelled_.erase(overflow_[i].id);
        overflow_[i] = std::move(overflow_.back());
        overflow_.pop_back();
        --overflowed_;
        continue;
      }
      if (!found || before(overflow_[i].time, overflow_[i].id,
                           overflow_[best.index].time,
                           overflow_[best.index].id)) {
        best = Located{true, 0, i};
        found = true;
      }
      ++i;
    }
  }
  const Event& e =
      best.in_overflow ? overflow_[best.index]
                       : buckets_[best.bucket][best.index];
  min_loc_ = best;
  min_time_ = e.time;
  min_id_ = e.id;
  min_valid_ = true;
  return best;
}

Event CalendarQueue::pop() {
  if (live_count_ == 0) {
    throw std::logic_error("EventQueue: pop() on an empty queue");
  }
  const Located loc = find_min();
  min_valid_ = false;
  auto take = [](std::vector<Event>& from, std::size_t i) {
    Event out = std::move(from[i]);
    from[i] = std::move(from.back());
    from.pop_back();
    return out;
  };
  Event event = loc.in_overflow ? take(overflow_, loc.index)
                                : take(buckets_[loc.bucket], loc.index);
  if (loc.in_overflow) {
    --overflowed_;
  } else {
    --bucketed_;
    cur_year_ = year_of(event.time);
  }
  pending_.erase(event.id);
  --live_count_;
  maybe_resize();
  return event;
}

SimTime CalendarQueue::next_time() const {
  if (live_count_ == 0) {
    throw std::logic_error("EventQueue: next_time() on an empty queue");
  }
  (void)find_min();
  return min_time_;
}

bool CalendarQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_count_;
  if (min_valid_ && min_id_ == id) min_valid_ = false;
  return true;
}

void CalendarQueue::clear() {
  buckets_.clear();
  buckets_.resize(kMinBuckets);
  overflow_.clear();
  width_ = 1.0;
  cur_year_ = 0;
  bucketed_ = 0;
  overflowed_ = 0;
  pending_.clear();
  cancelled_.clear();
  live_count_ = 0;
  min_valid_ = false;
}

void CalendarQueue::maybe_resize() {
  if (bucketed_ > buckets_.size() * 2) {
    rebuild(buckets_.size() * 2);
  } else if (buckets_.size() > kMinBuckets && bucketed_ < buckets_.size() / 2) {
    rebuild(buckets_.size() / 2);
  }
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<Event> all;
  all.reserve(bucketed_);
  for (auto& bucket : buckets_) {
    for (auto& e : bucket) {
      if (cancelled_.contains(e.id)) {
        cancelled_.erase(e.id);
        continue;
      }
      all.push_back(std::move(e));
    }
    bucket.clear();
  }
  bucketed_ = all.size();
  // Re-derive the day width from the live span so occupancy stays near one
  // event per bucket. Any width is order-correct (selection re-derives the
  // minimum); this is purely a density knob.
  if (all.size() > 1) {
    SimTime lo = all.front().time;
    SimTime hi = lo;
    for (const auto& e : all) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const double span = hi - lo;
    double w = span / static_cast<double>(all.size());
    const double floor_w =
        std::max(1e-12, std::abs(hi) * 1e-12);  // keep years in range
    if (!(w > floor_w)) w = std::max(1.0, floor_w);
    width_ = w;
  }
  buckets_.clear();
  buckets_.resize(std::max(nbuckets, kMinBuckets));
  cur_year_ = kOverflowYear;
  for (auto& e : all) {
    const std::uint64_t year = year_of(e.time);
    cur_year_ = std::min(cur_year_, year);
    buckets_[static_cast<std::size_t>(year % buckets_.size())].push_back(
        std::move(e));
  }
  if (bucketed_ == 0) cur_year_ = 0;
  min_valid_ = false;
}

}  // namespace pushpull::des
