#include "des/simulator.hpp"

#include <stdexcept>
#include <string>

namespace pushpull::des {

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  if (event.time < now_) {
    ++order_violations_;
    throw std::logic_error("Simulator: event " + std::to_string(event.id) +
                           " scheduled in the past (t=" +
                           std::to_string(event.time) + ", now=" +
                           std::to_string(now_) + ")");
  }
  now_ = event.time;
  ++dispatched_;
  event.action();
  return true;
}

void Simulator::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > horizon) break;
    step();
  }
  // Leave the clock at the horizon if we exhausted events before it, so a
  // subsequent schedule_in() measures from the end of the observation window.
  if (horizon != kForever && now_ < horizon && queue_.empty()) now_ = horizon;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  stop_requested_ = false;
  evq_level_mark_ = kEvqLevelBase;
}

}  // namespace pushpull::des
