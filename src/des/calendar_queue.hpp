#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "des/event.hpp"

namespace pushpull::des {

/// Calendar queue (Brown 1988): the pending-event set as a hashed ring of
/// time buckets, one "day" wide each, scanned year by year.
///
/// push hashes an event to bucket `floor(time/width) % nbuckets`; pop scans
/// forward from the current day and takes the earliest event whose year
/// matches, falling back to a direct minimum search when the calendar is
/// sparse. With the bucket count resized to track occupancy (width re-derived
/// from the live span on every rebuild), both operations are O(1) amortized —
/// versus O(log n) for the binary heap — which is what makes million-event
/// pending sets affordable.
///
/// Drop-in for the heap behind `EventQueue`: identical (time, id) pop order,
/// identical lazy-cancellation semantics (cancelled events stay stored and
/// are purged when a scan surfaces them), identical duplicate-id and
/// empty-pop diagnostics. Buckets are unsorted; every selection re-derives
/// the minimum under the total order (time, then id), so the order matches
/// the heap bit-for-bit including duplicate-timestamp FIFO ties.
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  void push(Event event);
  [[nodiscard]] Event pop();
  [[nodiscard]] SimTime next_time() const;
  bool cancel(EventId id);
  void clear();

 private:
  // Years at or past this value (non-finite or astronomically late times)
  // live in the overflow list, consulted only when every bucket is empty.
  static constexpr std::uint64_t kOverflowYear = std::uint64_t{1} << 62;
  static constexpr std::size_t kMinBuckets = 16;

  struct Located {
    bool in_overflow = false;
    std::size_t bucket = 0;
    std::size_t index = 0;
  };

  [[nodiscard]] std::uint64_t year_of(SimTime t) const noexcept;
  // Purges cancelled events from one bucket (erase-swap; intra-bucket order
  // is irrelevant because selection always scans for the minimum).
  void purge_bucket(std::vector<Event>& bucket) const;
  // Locates the live minimum and caches it. Precondition: live_count_ > 0.
  [[nodiscard]] Located find_min() const;
  void maybe_resize();
  void rebuild(std::size_t nbuckets);

  // mutable: const queries purge cancelled entries and refresh the cached
  // minimum — invisible to callers, exactly like the heap's lazy purge.
  mutable std::vector<std::vector<Event>> buckets_;
  mutable std::vector<Event> overflow_;
  double width_ = 1.0;
  mutable std::uint64_t cur_year_ = 0;  // earliest year that may hold events
  mutable std::size_t bucketed_ = 0;    // records stored in buckets_
  mutable std::size_t overflowed_ = 0;  // records stored in overflow_
  std::unordered_set<EventId> pending_;
  mutable std::unordered_set<EventId> cancelled_;
  std::size_t live_count_ = 0;

  // Cached location of the live minimum so the ubiquitous next_time();pop()
  // pair costs one scan. Valid only until a pop, a cancel of the cached id,
  // or a rebuild; a push that beats the cached (time, id) retargets the
  // cache instead of invalidating it.
  mutable Located min_loc_;
  mutable SimTime min_time_ = 0.0;
  mutable EventId min_id_ = 0;
  mutable bool min_valid_ = false;
};

}  // namespace pushpull::des
