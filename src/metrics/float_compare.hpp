#pragma once

namespace pushpull::metrics {

/// Approved floating-point comparison helpers (detlint rule D4).
///
/// A raw `==`/`!=` on doubles is almost always a bug in metric code — but
/// a handful of sites legitimately need bit-exact comparison (skipping
/// states with exactly-zero probability mass, matching a grid value that
/// was produced by the same expression). Routing those through these
/// helpers names the intent and gives the linter a single approved home
/// for the raw operator.

/// Intentional bit-exact equality. Use only when both operands come from
/// the same computation (grid values, sentinels, exact zeros) — never to
/// compare independently-accumulated results.
[[nodiscard]] constexpr bool exactly_equal(double a, double b) noexcept {
  return a == b;  // the approved helper itself; D4 skips this file
}

/// Intentional bit-exact test against zero (e.g. "no probability mass").
[[nodiscard]] constexpr bool exactly_zero(double a) noexcept {
  return exactly_equal(a, 0.0);
}

/// Tolerance comparison for independently-computed values.
[[nodiscard]] constexpr bool approx_equal(double a, double b,
                                          double tolerance) noexcept {
  const double diff = a > b ? a - b : b - a;
  return diff <= tolerance;
}

}  // namespace pushpull::metrics
