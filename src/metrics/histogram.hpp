#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pushpull::metrics {

/// Fixed-width-bin histogram over [lo, hi) with overflow/underflow bins.
/// Used to report waiting-time distributions (not just means) per class and
/// to compute approximate percentiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const noexcept {
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

  /// Approximate quantile by linear interpolation within the containing bin.
  /// q in [0, 1]. Returns lo()/hi() bounds for mass in under/overflow bins.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pushpull::metrics
