#pragma once

#include <cstddef>
#include <vector>

#include "metrics/welford.hpp"

namespace pushpull::metrics {

/// Batch-means confidence intervals from a single long run.
///
/// Consecutive observations from one simulation are autocorrelated, so the
/// naive Welford half-width understates the error. Batch means is the
/// standard remedy: the stream is cut into `num_batches` contiguous
/// batches, each batch's mean is (approximately) independent, and the CI
/// is computed over the batch means. Observations are buffered so the
/// batch size can be chosen after the fact.
class BatchMeans {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double mean() const noexcept {
    Welford w;
    for (double x : samples_) w.add(x);
    return w.mean();
  }

  /// Statistics over the means of `num_batches` equal contiguous batches
  /// (a trailing remainder shorter than a batch is dropped). Requires at
  /// least one observation per batch.
  [[nodiscard]] Welford batch_statistics(std::size_t num_batches) const;

  /// Half-width of the ~95% CI on the long-run mean via batch means.
  [[nodiscard]] double ci_half_width(std::size_t num_batches = 20,
                                     double z = 1.96) const {
    Welford batches = batch_statistics(num_batches);
    return batches.ci_half_width(z);
  }

  /// Lag-1 autocorrelation of the raw observations — the diagnostic for
  /// why raw Welford CIs are too tight on simulation output.
  [[nodiscard]] double lag1_autocorrelation() const;

 private:
  std::vector<double> samples_;
};

}  // namespace pushpull::metrics
