#pragma once

#include <array>
#include <cstdint>

namespace pushpull::metrics {

/// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
/// CACM 1985): tracks one quantile with five markers in O(1) memory and
/// O(1) per observation — no sample storage. Used for per-class delay
/// tails (p95/p99), where storing millions of waits per configuration
/// sweep would be wasteful.
///
/// Accuracy is the algorithm's usual: exact until five observations, then
/// a piecewise-parabolic approximation that converges for smooth
/// distributions (validated against exact quantiles in the tests).
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double quantile() const noexcept { return q_; }

  /// Current estimate. With fewer than five observations, returns the
  /// exact sample quantile of what has been seen (0 if empty).
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (sorted)
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace pushpull::metrics
