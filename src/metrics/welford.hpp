#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace pushpull::metrics {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the millions of waiting-time samples a long
/// simulation produces; O(1) memory. Also tracks min/max and exposes a
/// normal-approximation confidence half-width for reporting.
class Welford {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const Welford& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  /// Rebuilds an accumulator from previously observed internal state
  /// (count, mean, m2, sum, min, max — exactly what the accessors expose
  /// for a non-empty accumulator). Used by checkpoint/resume to restore a
  /// partial bit-for-bit; a zero count yields a fresh accumulator.
  [[nodiscard]] static Welford restore(std::uint64_t count, double mean,
                                       double m2, double sum, double min,
                                       double max) noexcept {
    Welford w;
    if (count == 0) return w;
    w.count_ = count;
    w.mean_ = mean;
    w.m2_ = m2;
    w.sum_ = sum;
    w.min_ = min;
    w.max_ = max;
    return w;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }

  /// Raw second central moment Σ(x−mean)² — exposed (alongside mean/sum/
  /// min/max) so checkpointing can round-trip the exact internal state;
  /// prefer variance() for statistics.
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : 0.0;
  }

  /// Half-width of the normal-approximation confidence interval around the
  /// mean; z = 1.96 gives ~95%.
  [[nodiscard]] double ci_half_width(double z = 1.96) const noexcept {
    if (count_ < 2) return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(count_));
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pushpull::metrics
