#include "metrics/p2_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pushpull::metrics {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }

  // Locate the cell containing x and update extreme markers.
  std::size_t cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }
  ++count_;

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions with the
  // piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would break marker ordering.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((delta >= 1.0 && right_gap > 1.0) ||
        (delta <= -1.0 && left_gap < -1.0)) {
      const double d = delta >= 1.0 ? 1.0 : -1.0;
      // Parabolic prediction.
      const double hp =
          heights_[i] +
          d / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + d) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - d) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Linear fallback toward the neighbor in the move direction.
        const std::size_t j = d > 0 ? i + 1 : i - 1;
        heights_[i] += d * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += d;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile of the sorted prefix (nearest-rank).
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_)));
    return sorted[std::min(count_ - 1, static_cast<std::uint64_t>(
                                           rank > 0 ? rank - 1 : 0))];
  }
  return heights_[2];
}

}  // namespace pushpull::metrics
