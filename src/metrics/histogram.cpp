#include "metrics/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace pushpull::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // boundary rounding
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (q <= 0.0) return lo_;
  if (q >= 1.0) return hi_;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(under_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace pushpull::metrics
