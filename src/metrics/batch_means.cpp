#include "metrics/batch_means.hpp"

#include <stdexcept>

namespace pushpull::metrics {

Welford BatchMeans::batch_statistics(std::size_t num_batches) const {
  if (num_batches < 2) {
    throw std::invalid_argument("BatchMeans: need at least two batches");
  }
  const std::size_t batch_size = samples_.size() / num_batches;
  if (batch_size == 0) {
    throw std::invalid_argument(
        "BatchMeans: not enough observations for the requested batches");
  }
  Welford batches;
  for (std::size_t b = 0; b < num_batches; ++b) {
    Welford one;
    for (std::size_t i = b * batch_size; i < (b + 1) * batch_size; ++i) {
      one.add(samples_[i]);
    }
    batches.add(one.mean());
  }
  return batches;
}

double BatchMeans::lag1_autocorrelation() const {
  if (samples_.size() < 3) return 0.0;
  Welford w;
  for (double x : samples_) w.add(x);
  const double mean = w.mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double d = samples_[i] - mean;
    den += d * d;
    if (i + 1 < samples_.size()) {
      num += d * (samples_[i + 1] - mean);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace pushpull::metrics
