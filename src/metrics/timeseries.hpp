#pragma once

#include <cstddef>
#include <vector>

namespace pushpull::metrics {

/// A (time, value) sample sequence, e.g. pull-queue length over virtual
/// time. Supports time-weighted averaging, the right mean for state
/// variables sampled at irregular event instants.
class TimeSeries {
 public:
  struct Sample {
    double time;
    double value;
  };

  void add(double time, double value) { samples_.push_back({time, value}); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Time-weighted mean: each sample's value holds from its timestamp to the
  /// next one's; the last holds until `end_time`.
  [[nodiscard]] double time_weighted_mean(double end_time) const noexcept {
    if (samples_.empty()) return 0.0;
    double area = 0.0;
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
      area += samples_[i].value * (samples_[i + 1].time - samples_[i].time);
    }
    area += samples_.back().value * (end_time - samples_.back().time);
    const double span = end_time - samples_.front().time;
    return span > 0.0 ? area / span : samples_.front().value;
  }

 private:
  std::vector<Sample> samples_;
};

}  // namespace pushpull::metrics
