#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace pushpull::metrics {

/// Key-ordered snapshot of an associative container.
///
/// Iterating an unordered_map/unordered_set directly produces a
/// platform- and libc++-dependent order, which silently breaks byte-exact
/// reports, JSONL replay and error messages (detlint rule D3). Any output
/// path that walks an unordered container must route through here:
///
///   for (const auto& [key, value] : metrics::sorted_view(counters_)) ...
///
/// For map-like containers (those with a mapped_type) the view is a vector
/// of (key, value) pairs sorted by key; for sets it is a sorted vector of
/// keys. Values are copied — the view is a snapshot for emission, not a
/// live reference, so use it at output boundaries rather than in hot loops.
template <typename Container>
[[nodiscard]] auto sorted_view(const Container& container) {
  constexpr bool is_map = requires { typename Container::mapped_type; };
  if constexpr (is_map) {
    std::vector<std::pair<typename Container::key_type,
                          typename Container::mapped_type>>
        view;
    view.reserve(container.size());
    for (const auto& [key, value] : container) view.emplace_back(key, value);
    std::sort(view.begin(), view.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return view;
  } else {
    std::vector<typename Container::key_type> view(container.begin(),
                                                   container.end());
    std::sort(view.begin(), view.end());
    return view;
  }
}

}  // namespace pushpull::metrics
