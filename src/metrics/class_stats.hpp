#pragma once

#include <cstdint>
#include <vector>

#include "metrics/p2_quantile.hpp"
#include "metrics/welford.hpp"

namespace pushpull::metrics {

/// Alias-identical to workload's ClassId. metrics sits below workload in
/// the layer DAG (tools/detlint/layers.toml), so this header must not
/// include workload/; the static_assert in core/sched_rules.hpp (which sees
/// both layers) pins the two aliases together.
using ClassId = std::uint32_t;

/// Outcome counters and waiting-time statistics for one service class.
/// Tail quantiles are streamed with P² estimators; note that quantiles are
/// per-class only — aggregate() pools counters and moments but cannot merge
/// quantile sketches, so the aggregate's quantiles stay empty.
struct ClassStats {
  Welford wait;                 // completed requests: arrival → delivery
  P2Quantile wait_p50{0.50};
  P2Quantile wait_p95{0.95};
  P2Quantile wait_p99{0.99};
  /// Inter-service gap: simulated time between consecutive deliveries of
  /// this class — the "regular service" metric. A starved class shows a
  /// large gap max even when its served requests' waits look fine. Only
  /// populated when the engine passes delivery timestamps to
  /// record_served (all DES engines do); gap.count() == served - 1 when
  /// the class was served at least twice.
  Welford gap;
  P2Quantile gap_p99{0.99};
  std::uint64_t arrived = 0;    // requests generated for this class
  std::uint64_t served = 0;     // delivered (push or pull)
  std::uint64_t served_push = 0;
  std::uint64_t served_pull = 0;
  std::uint64_t blocked = 0;    // dropped by bandwidth admission
  std::uint64_t abandoned = 0;  // impatient clients that gave up waiting
  // Fault-layer outcomes (all zero on a perfect channel / unbounded queue).
  std::uint64_t corrupted = 0;  // request-deliveries voided by channel errors
  std::uint64_t retries = 0;    // pull re-requests issued after corruption
  std::uint64_t shed = 0;       // rejected/evicted by pull-queue admission
  std::uint64_t lost = 0;       // pull requests that exhausted their retries
  // Resilience-layer outcomes (all zero with crashes and ladder disabled).
  std::uint64_t rejected = 0;   // refused at the uplink by admission control
  std::uint64_t stormed = 0;    // re-requests issued after a server crash

  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return arrived - served - blocked - abandoned - shed - lost - rejected;
  }
  [[nodiscard]] double blocking_ratio() const noexcept {
    const std::uint64_t settled = served + blocked + abandoned;
    return settled ? static_cast<double>(blocked) /
                         static_cast<double>(settled)
                   : 0.0;
  }

  /// Fraction of settled requests refused by overload admission control.
  [[nodiscard]] double rejection_ratio() const noexcept {
    const std::uint64_t settled =
        served + blocked + abandoned + shed + lost + rejected;
    return settled ? static_cast<double>(rejected) /
                         static_cast<double>(settled)
                   : 0.0;
  }

  /// Fraction of settled requests whose client gave up before delivery.
  [[nodiscard]] double abandonment_ratio() const noexcept {
    const std::uint64_t settled =
        served + blocked + abandoned + shed + lost + rejected;
    return settled ? static_cast<double>(abandoned) /
                         static_cast<double>(settled)
                   : 0.0;
  }

  /// Fraction of settled requests actually delivered intact — the
  /// user-perceived *goodput* as opposed to the server's transmission
  /// throughput (which also counts corrupted airtime).
  [[nodiscard]] double goodput_ratio() const noexcept {
    const std::uint64_t settled =
        served + blocked + abandoned + shed + lost + rejected;
    return settled ? static_cast<double>(served) /
                         static_cast<double>(settled)
                   : 0.0;
  }

  /// Fraction of settled requests removed by the fault layer (shed by
  /// admission control or lost after exhausting retries).
  [[nodiscard]] double loss_ratio() const noexcept {
    const std::uint64_t settled =
        served + blocked + abandoned + shed + lost + rejected;
    return settled ? static_cast<double>(shed + lost) /
                         static_cast<double>(settled)
                   : 0.0;
  }

  /// Pools counters and waiting-time moments from `other` (quantile
  /// sketches cannot merge and are left untouched).
  void merge_counters(const ClassStats& other) noexcept {
    wait.merge(other.wait);
    gap.merge(other.gap);
    arrived += other.arrived;
    served += other.served;
    served_push += other.served_push;
    served_pull += other.served_pull;
    blocked += other.blocked;
    abandoned += other.abandoned;
    corrupted += other.corrupted;
    retries += other.retries;
    shed += other.shed;
    lost += other.lost;
    rejected += other.rejected;
    stormed += other.stormed;
  }
};

/// Per-class collector indexed by ClassId, plus an aggregate view.
class ClassCollector {
 public:
  explicit ClassCollector(std::size_t num_classes)
      : stats_(num_classes), last_service_(num_classes, -1.0) {}

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return stats_.size();
  }
  [[nodiscard]] ClassStats& at(ClassId cls) noexcept {
    return stats_[cls];
  }
  [[nodiscard]] const ClassStats& at(ClassId cls) const noexcept {
    return stats_[cls];
  }
  [[nodiscard]] const std::vector<ClassStats>& all() const noexcept {
    return stats_;
  }

  void record_arrival(ClassId cls) noexcept { ++stats_[cls].arrived; }

  /// Records a delivery. `now` is the delivery's simulated timestamp; when
  /// non-negative, consecutive deliveries of the same class also feed the
  /// inter-service-gap statistics (the default of -1.0 keeps legacy
  /// three-argument callers compiling and gap-free).
  void record_served(ClassId cls, double wait_time, bool via_push,
                     double now = -1.0) {
    auto& s = stats_[cls];
    ++s.served;
    (via_push ? s.served_push : s.served_pull) += 1;
    s.wait.add(wait_time);
    s.wait_p50.add(wait_time);
    s.wait_p95.add(wait_time);
    s.wait_p99.add(wait_time);
    if (now >= 0.0) {
      if (last_service_[cls] >= 0.0) {
        const double gap = now - last_service_[cls];
        s.gap.add(gap);
        s.gap_p99.add(gap);
      }
      last_service_[cls] = now;
    }
  }

  void record_blocked(ClassId cls) noexcept {
    ++stats_[cls].blocked;
  }

  void record_abandoned(ClassId cls) noexcept {
    ++stats_[cls].abandoned;
  }

  void record_corrupted(ClassId cls) noexcept {
    ++stats_[cls].corrupted;
  }

  void record_retry(ClassId cls) noexcept { ++stats_[cls].retries; }

  void record_shed(ClassId cls) noexcept { ++stats_[cls].shed; }

  void record_lost(ClassId cls) noexcept { ++stats_[cls].lost; }

  void record_rejected(ClassId cls) noexcept {
    ++stats_[cls].rejected;
  }

  void record_stormed(ClassId cls) noexcept {
    ++stats_[cls].stormed;
  }

  /// All classes merged (waiting-time stats pooled over every request).
  [[nodiscard]] ClassStats aggregate() const noexcept {
    ClassStats total;
    for (const auto& s : stats_) total.merge_counters(s);
    return total;
  }

 private:
  std::vector<ClassStats> stats_;
  /// Timestamp of the last recorded delivery per class (-1 = none yet).
  std::vector<double> last_service_;
};

}  // namespace pushpull::metrics
