#include "workload/popularity_estimator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pushpull::workload {

PopularityEstimator::PopularityEstimator(std::size_t num_items,
                                         double half_life)
    : weights_(num_items, 0.0), half_life_(half_life) {
  if (num_items == 0) {
    throw std::invalid_argument("PopularityEstimator: need at least one item");
  }
  if (half_life <= 0.0) {
    throw std::invalid_argument("PopularityEstimator: half-life must be > 0");
  }
}

void PopularityEstimator::rebase(des::SimTime now) {
  // Keep the lazy-decay exponent small; rebasing multiplies every stored
  // weight by the decay accumulated since the previous origin.
  const double factor = std::exp2(-(now - scale_origin_) / half_life_);
  for (double& w : weights_) w *= factor;
  scale_origin_ = now;
}

void PopularityEstimator::observe(catalog::ItemId item, des::SimTime now) {
  if (item >= weights_.size()) {
    throw std::out_of_range("PopularityEstimator: item out of range");
  }
  if (now < last_observation_) {
    throw std::invalid_argument(
        "PopularityEstimator: observations must be time-ordered");
  }
  last_observation_ = now;
  if ((now - scale_origin_) / half_life_ > 500.0) rebase(now);
  weights_[item] += scale_at(now);
}

double PopularityEstimator::weight(catalog::ItemId item) const {
  return weights_[item] / scale_at(last_observation_);
}

double PopularityEstimator::total_weight() const {
  const double scale = scale_at(last_observation_);
  double total = 0.0;
  for (double w : weights_) total += w;
  return total / scale;
}

std::vector<double> PopularityEstimator::probabilities() const {
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  std::vector<double> probs(weights_.size());
  if (total <= 0.0) {
    std::fill(probs.begin(), probs.end(),
              1.0 / static_cast<double>(weights_.size()));
    return probs;
  }
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    probs[i] = weights_[i] / total;
  }
  return probs;
}

std::vector<catalog::ItemId> PopularityEstimator::ranking() const {
  std::vector<catalog::ItemId> order(weights_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](catalog::ItemId a, catalog::ItemId b) {
                     return weights_[a] > weights_[b];
                   });
  return order;
}

}  // namespace pushpull::workload
