#pragma once

#include <cstdint>

#include "catalog/catalog.hpp"
#include "rng/exponential.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro256ss.hpp"
#include "workload/population.hpp"
#include "workload/request.hpp"

namespace pushpull::workload {

/// Poisson request source: exponential inter-arrivals at aggregate rate λ'
/// (the paper's assumption 2, λ' = 5), item chosen by catalog popularity,
/// class chosen by population share.
///
/// The three random choices draw from independent substreams of the given
/// seed so that, e.g., two runs with different catalogs still see identical
/// arrival instants — which is what makes cutoff sweeps paired comparisons.
class RequestGenerator {
 public:
  RequestGenerator(const catalog::Catalog& cat, const ClientPopulation& pop,
                   double arrival_rate, std::uint64_t seed);

  [[nodiscard]] double arrival_rate() const noexcept { return rate_; }

  /// Generates the next request; arrival times are strictly increasing.
  [[nodiscard]] Request next();

  /// Number of requests generated so far.
  [[nodiscard]] RequestId generated() const noexcept { return next_id_; }

 private:
  const catalog::Catalog* catalog_;
  const ClientPopulation* population_;
  double rate_;
  rng::Xoshiro256ss arrivals_;
  rng::Xoshiro256ss items_;
  rng::Xoshiro256ss classes_;
  des::SimTime clock_ = 0.0;
  RequestId next_id_ = 0;
};

}  // namespace pushpull::workload
