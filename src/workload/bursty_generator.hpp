#pragma once

#include <cstdint>
#include <deque>

#include "catalog/catalog.hpp"
#include "rng/xoshiro256ss.hpp"
#include "workload/population.hpp"
#include "workload/request.hpp"

namespace pushpull::workload {

/// Compound-Poisson (bursty) request source: *batches* arrive as a Poisson
/// process and each batch carries 1 + Poisson(batch_mean − 1) requests at
/// the same instant, items and classes drawn independently per request.
///
/// The aggregate request rate equals `arrival_rate` exactly (the batch
/// process rate is scaled down by the mean batch size), so sweeps against
/// RequestGenerator are load-matched: only the burstiness (the index of
/// dispersion, ≈ batch_mean for large windows) changes. Real wireless
/// request streams are bursty — flash crowds after events — and Poisson
/// arrivals are the paper's softest assumption; this class prices it.
class BurstyGenerator {
 public:
  /// `batch_mean` >= 1; batch_mean == 1 degenerates to (almost) the plain
  /// Poisson process.
  BurstyGenerator(const catalog::Catalog& cat, const ClientPopulation& pop,
                  double arrival_rate, double batch_mean, std::uint64_t seed);

  [[nodiscard]] double arrival_rate() const noexcept { return rate_; }
  [[nodiscard]] double batch_mean() const noexcept { return batch_mean_; }

  /// Next request; arrivals are non-decreasing (batch members share one
  /// instant).
  [[nodiscard]] Request next();

 private:
  void refill();

  const catalog::Catalog* catalog_;
  const ClientPopulation* population_;
  double rate_;
  double batch_mean_;
  double batch_rate_;
  rng::Xoshiro256ss arrivals_;
  rng::Xoshiro256ss sizes_;
  rng::Xoshiro256ss items_;
  rng::Xoshiro256ss classes_;
  des::SimTime clock_ = 0.0;
  RequestId next_id_ = 0;
  std::deque<Request> ready_;
};

}  // namespace pushpull::workload
