#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pushpull::workload {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  for (std::size_t i = 1; i < requests_.size(); ++i) {
    if (requests_[i].arrival < requests_[i - 1].arrival) {
      throw std::invalid_argument("Trace: arrivals must be non-decreasing");
    }
  }
}

des::SimTime Trace::span() const noexcept {
  return requests_.empty() ? 0.0 : requests_.back().arrival;
}

void Trace::save_csv(std::ostream& out) const {
  out << "id,arrival,item,class\n";
  for (const auto& r : requests_) {
    out << r.id << ',' << r.arrival << ',' << r.item << ',' << r.cls << '\n';
  }
}

Trace Trace::load_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("Trace: missing CSV header");
  }
  if (line != "id,arrival,item,class") {
    throw std::invalid_argument("Trace: unexpected CSV header: " + line);
  }
  std::vector<Request> reqs;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    Request req;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(fields >> req.id >> c1 >> req.arrival >> c2 >> req.item >> c3 >>
          req.cls) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      throw std::invalid_argument("Trace: malformed CSV row: " + line);
    }
    reqs.push_back(req);
  }
  return Trace(std::move(reqs));
}

}  // namespace pushpull::workload
