#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/alias_table.hpp"
#include "workload/service_class.hpp"

namespace pushpull::workload {

/// The client population partitioned into prioritized service classes.
///
/// Provides the class-mix distribution used when generating requests: each
/// arriving request belongs to a class drawn with probability equal to that
/// class's population share (clients are statistically identical within a
/// class, so per-client identity is not modeled — only the class matters to
/// the scheduler).
class ClientPopulation {
 public:
  /// Builds from explicit classes; shares must be positive and are
  /// normalized to sum to 1.
  explicit ClientPopulation(std::vector<ServiceClass> classes);

  /// Paper default: three classes A/B/C with priorities 3:2:1 and
  /// Zipf(theta)-distributed population shares, fewest clients in Class-A.
  [[nodiscard]] static ClientPopulation paper_default(double zipf_theta = 1.0);

  /// `num_classes` classes with priority weights num_classes..1 and
  /// Zipf(theta) population shares (rank 1 of the Zipf = the *least*
  /// important class, matching the paper's assumption 6).
  [[nodiscard]] static ClientPopulation zipf_classes(std::size_t num_classes,
                                                     double zipf_theta);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] const ServiceClass& cls(ClassId id) const noexcept {
    return classes_[id];
  }
  [[nodiscard]] std::span<const ServiceClass> classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] double priority(ClassId id) const noexcept {
    return classes_[id].priority;
  }
  [[nodiscard]] double share(ClassId id) const noexcept {
    return classes_[id].population_share;
  }

  /// Highest priority weight across classes (used for normalizations).
  [[nodiscard]] double max_priority() const noexcept;

  /// Draws the class of an arriving request.
  template <typename Engine>
  [[nodiscard]] ClassId sample_class(Engine& eng) const {
    return static_cast<ClassId>(mix_.sample(eng));
  }

 private:
  std::vector<ServiceClass> classes_;
  rng::AliasTable mix_;
};

}  // namespace pushpull::workload
