#include "workload/drifting_generator.hpp"

#include <stdexcept>

#include "rng/exponential.hpp"
#include "rng/stream.hpp"

namespace pushpull::workload {

DriftingGenerator::DriftingGenerator(const catalog::Catalog& cat,
                                     const ClientPopulation& pop,
                                     double arrival_rate, double epoch_length,
                                     std::size_t shift, std::uint64_t seed)
    : catalog_(&cat),
      population_(&pop),
      rate_(arrival_rate),
      epoch_length_(epoch_length),
      shift_(shift % cat.size()),
      arrivals_(rng::StreamFactory(seed).stream("arrivals")),
      items_(rng::StreamFactory(seed).stream("items")),
      classes_(rng::StreamFactory(seed).stream("classes")) {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("DriftingGenerator: arrival rate must be > 0");
  }
  if (epoch_length <= 0.0) {
    throw std::invalid_argument(
        "DriftingGenerator: epoch length must be > 0");
  }
}

catalog::ItemId DriftingGenerator::item_at_rank(std::size_t rank,
                                                des::SimTime when) const {
  const std::size_t n = catalog_->size();
  const std::size_t offset = (epoch_of(when) * shift_) % n;
  return static_cast<catalog::ItemId>((rank + offset) % n);
}

double DriftingGenerator::probability_at(catalog::ItemId item,
                                         des::SimTime when) const {
  const std::size_t n = catalog_->size();
  const std::size_t offset = (epoch_of(when) * shift_) % n;
  // item = (rank + offset) mod n  ⇒  rank = (item − offset) mod n.
  const std::size_t rank = (static_cast<std::size_t>(item) + n - offset) % n;
  return catalog_->probability(static_cast<catalog::ItemId>(rank));
}

Request DriftingGenerator::next() {
  clock_ += rng::exponential(arrivals_, rate_);
  Request req;
  req.id = next_id_++;
  req.arrival = clock_;
  // Draw a *rank* with the catalog's (stationary) popularity law, then map
  // it to the item occupying that rank in the current epoch.
  const auto rank = static_cast<std::size_t>(catalog_->sample(items_));
  req.item = item_at_rank(rank, clock_);
  req.cls = population_->sample_class(classes_);
  return req;
}

}  // namespace pushpull::workload
