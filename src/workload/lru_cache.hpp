#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>

#include "catalog/item.hpp"

namespace pushpull::workload {

/// Fixed-capacity LRU set of item ids — a wireless client's local cache.
/// O(1) touch/insert/lookup via the classic list + index layout.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] bool empty() const noexcept { return index_.empty(); }

  [[nodiscard]] bool contains(catalog::ItemId item) const {
    return index_.contains(item);
  }

  /// Looks up `item`; on a hit it becomes most-recently-used.
  bool touch(catalog::ItemId item) {
    const auto it = index_.find(item);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Inserts `item` as most-recently-used, evicting the LRU entry if full.
  /// Inserting an existing item just refreshes its recency.
  void insert(catalog::ItemId item) {
    if (capacity_ == 0) return;
    if (touch(item)) return;
    if (index_.size() == capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(item);
    index_[item] = order_.begin();
  }

 private:
  std::size_t capacity_;
  std::list<catalog::ItemId> order_;  // front = most recent
  std::unordered_map<catalog::ItemId, std::list<catalog::ItemId>::iterator>
      index_;
};

}  // namespace pushpull::workload
