#include "workload/request_generator.hpp"

#include <stdexcept>

namespace pushpull::workload {

RequestGenerator::RequestGenerator(const catalog::Catalog& cat,
                                   const ClientPopulation& pop,
                                   double arrival_rate, std::uint64_t seed)
    : catalog_(&cat),
      population_(&pop),
      rate_(arrival_rate),
      arrivals_(rng::StreamFactory(seed).stream("arrivals")),
      items_(rng::StreamFactory(seed).stream("items")),
      classes_(rng::StreamFactory(seed).stream("classes")) {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("RequestGenerator: arrival rate must be > 0");
  }
}

Request RequestGenerator::next() {
  clock_ += rng::exponential(arrivals_, rate_);
  Request req;
  req.id = next_id_++;
  req.arrival = clock_;
  req.item = catalog_->sample(items_);
  req.cls = population_->sample_class(classes_);
  return req;
}

}  // namespace pushpull::workload
