#include "workload/population.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "rng/zipf.hpp"

namespace pushpull::workload {

ClientPopulation::ClientPopulation(std::vector<ServiceClass> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty()) {
    throw std::invalid_argument("ClientPopulation: at least one class");
  }
  double total = 0.0;
  for (const auto& c : classes_) {
    if (c.population_share <= 0.0) {
      throw std::invalid_argument(
          "ClientPopulation: population shares must be positive");
    }
    if (c.priority <= 0.0) {
      throw std::invalid_argument(
          "ClientPopulation: priorities must be positive");
    }
    total += c.population_share;
  }
  std::vector<double> shares(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i].population_share /= total;
    shares[i] = classes_[i].population_share;
  }
  mix_ = rng::AliasTable(shares);
}

ClientPopulation ClientPopulation::zipf_classes(std::size_t num_classes,
                                                double zipf_theta) {
  if (num_classes == 0) {
    throw std::invalid_argument("ClientPopulation: at least one class");
  }
  rng::ZipfDistribution zipf(num_classes, zipf_theta);
  std::vector<ServiceClass> classes(num_classes);
  for (std::size_t i = 0; i < num_classes; ++i) {
    // Class 0 is most important: largest priority weight, smallest share
    // (Zipf rank 1, the largest mass, goes to the last = least important
    // class).
    classes[i].name = "class-" + std::string(1, static_cast<char>('A' + (i % 26)));
    classes[i].priority = static_cast<double>(num_classes - i);
    classes[i].population_share = zipf.pmf(num_classes - 1 - i);
  }
  return ClientPopulation(std::move(classes));
}

ClientPopulation ClientPopulation::paper_default(double zipf_theta) {
  return zipf_classes(3, zipf_theta);
}

double ClientPopulation::max_priority() const noexcept {
  double best = 0.0;
  for (const auto& c : classes_) best = std::max(best, c.priority);
  return best;
}

}  // namespace pushpull::workload
