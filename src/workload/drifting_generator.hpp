#pragma once

#include <cstdint>
#include <vector>

#include "catalog/catalog.hpp"
#include "rng/xoshiro256ss.hpp"
#include "workload/population.hpp"
#include "workload/request.hpp"

namespace pushpull::workload {

/// Non-stationary request source: popularity keeps its Zipf *shape* but the
/// identity of the hot items rotates over time.
///
/// The generator draws a popularity rank exactly like RequestGenerator, then
/// maps rank → item through a permutation that advances by `shift` positions
/// every `epoch_length` time units. A static cutoff tuned for epoch 0 turns
/// stale as soon as the hot set moves — the workload the paper's periodic
/// cutoff re-optimization exists for, and the one the adaptive server is
/// benchmarked on.
class DriftingGenerator {
 public:
  /// `shift`: how many positions the rank→item mapping rotates per epoch;
  /// `epoch_length`: virtual time between rotations.
  DriftingGenerator(const catalog::Catalog& cat, const ClientPopulation& pop,
                    double arrival_rate, double epoch_length,
                    std::size_t shift, std::uint64_t seed);

  [[nodiscard]] double arrival_rate() const noexcept { return rate_; }
  [[nodiscard]] double epoch_length() const noexcept { return epoch_length_; }
  [[nodiscard]] std::size_t shift() const noexcept { return shift_; }

  /// Generates the next request; arrival times are strictly increasing.
  [[nodiscard]] Request next();

  /// The item currently occupying popularity rank `rank` (0 = hottest) at
  /// virtual time `when` — exposed so tests and the estimator bench can
  /// check the drift mechanics.
  ///
  /// Epoch boundaries are *inclusive toward the later epoch*: epoch k spans
  /// [k·epoch_length, (k+1)·epoch_length), so at exactly
  /// when == k·epoch_length the rotation for epoch k is already in force.
  /// scenario::Timeline adopts the same convention for its segment
  /// boundaries; a zero `shift` makes the generator draw-for-draw identical
  /// to RequestGenerator (the streams are seeded the same way).
  [[nodiscard]] catalog::ItemId item_at_rank(std::size_t rank,
                                             des::SimTime when) const;

  /// The *instantaneous* access probability of an item at `when`.
  [[nodiscard]] double probability_at(catalog::ItemId item,
                                      des::SimTime when) const;

 private:
  [[nodiscard]] std::size_t epoch_of(des::SimTime when) const noexcept {
    return epoch_length_ > 0.0
               ? static_cast<std::size_t>(when / epoch_length_)
               : 0;
  }

  const catalog::Catalog* catalog_;
  const ClientPopulation* population_;
  double rate_;
  double epoch_length_;
  std::size_t shift_;
  rng::Xoshiro256ss arrivals_;
  rng::Xoshiro256ss items_;
  rng::Xoshiro256ss classes_;
  des::SimTime clock_ = 0.0;
  RequestId next_id_ = 0;
};

}  // namespace pushpull::workload
