#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "workload/request.hpp"

namespace pushpull::workload {

/// A recorded request sequence, usable to replay the exact same workload
/// against different scheduler configurations (the basis of every paired
/// comparison in bench/ and of trace-driven examples).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests);

  /// Records `count` requests from any source with a next() -> Request
  /// member (RequestGenerator, DriftingGenerator, ...).
  template <typename Generator>
  [[nodiscard]] static Trace record(Generator& gen, std::size_t count) {
    std::vector<Request> reqs;
    reqs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) reqs.push_back(gen.next());
    return Trace(std::move(reqs));
  }

  /// Records requests until the arrival clock passes `horizon`.
  template <typename Generator>
  [[nodiscard]] static Trace record_until(Generator& gen,
                                          des::SimTime horizon) {
    std::vector<Request> reqs;
    for (;;) {
      Request req = gen.next();
      if (req.arrival > horizon) break;
      reqs.push_back(req);
    }
    return Trace(std::move(reqs));
  }

  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
  [[nodiscard]] std::span<const Request> requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] const Request& operator[](std::size_t i) const noexcept {
    return requests_[i];
  }

  /// Arrival time of the last request (0 for an empty trace).
  [[nodiscard]] des::SimTime span() const noexcept;

  /// Serializes as CSV: `id,arrival,item,class` with a header row.
  void save_csv(std::ostream& out) const;

  /// Parses the CSV format produced by save_csv. Throws on malformed input.
  [[nodiscard]] static Trace load_csv(std::istream& in);

 private:
  std::vector<Request> requests_;
};

}  // namespace pushpull::workload
