#include "workload/bursty_generator.hpp"

#include <stdexcept>

#include "rng/exponential.hpp"
#include "rng/poisson.hpp"
#include "rng/stream.hpp"

namespace pushpull::workload {

BurstyGenerator::BurstyGenerator(const catalog::Catalog& cat,
                                 const ClientPopulation& pop,
                                 double arrival_rate, double batch_mean,
                                 std::uint64_t seed)
    : catalog_(&cat),
      population_(&pop),
      rate_(arrival_rate),
      batch_mean_(batch_mean),
      batch_rate_(arrival_rate / batch_mean),
      arrivals_(rng::StreamFactory(seed).stream("batch-arrivals")),
      sizes_(rng::StreamFactory(seed).stream("batch-sizes")),
      items_(rng::StreamFactory(seed).stream("items")),
      classes_(rng::StreamFactory(seed).stream("classes")) {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument("BurstyGenerator: arrival rate must be > 0");
  }
  if (batch_mean < 1.0) {
    throw std::invalid_argument("BurstyGenerator: batch mean must be >= 1");
  }
}

void BurstyGenerator::refill() {
  clock_ += rng::exponential(arrivals_, batch_rate_);
  const std::uint64_t size =
      1 + rng::poisson(sizes_, batch_mean_ - 1.0);
  for (std::uint64_t i = 0; i < size; ++i) {
    Request req;
    req.id = next_id_++;
    req.arrival = clock_;
    req.item = catalog_->sample(items_);
    req.cls = population_->sample_class(classes_);
    ready_.push_back(req);
  }
}

Request BurstyGenerator::next() {
  while (ready_.empty()) refill();
  Request req = ready_.front();
  ready_.pop_front();
  return req;
}

}  // namespace pushpull::workload
