#pragma once

#include <cstdint>
#include <vector>

#include "catalog/catalog.hpp"
#include "rng/xoshiro256ss.hpp"
#include "workload/lru_cache.hpp"
#include "workload/population.hpp"
#include "workload/request.hpp"

namespace pushpull::workload {

/// Request source with client-side caching: a finite population of
/// identified clients, each holding a small LRU cache, generates Poisson
/// demand; a demand whose item is in the client's cache is satisfied
/// locally (zero delay, never reaches the server), everything else is
/// emitted as a Request and the item enters the cache (the client will
/// receive and keep it).
///
/// This is the client model of the Broadcast Disks line of work grafted
/// onto the paper's class-prioritized population; bench/ext_client_cache
/// uses it to show how terminal memory offloads the downlink.
class CachedRequestGenerator {
 public:
  /// `clients_per_class[c]` identified clients in class c (must be >= 1);
  /// each owns an LRU cache of `cache_capacity` items (0 disables caching).
  CachedRequestGenerator(const catalog::Catalog& cat,
                         const ClientPopulation& pop, double arrival_rate,
                         std::vector<std::size_t> clients_per_class,
                         std::size_t cache_capacity, std::uint64_t seed);

  /// Convenience: `total_clients` split across classes by population share
  /// (at least one client per class).
  CachedRequestGenerator(const catalog::Catalog& cat,
                         const ClientPopulation& pop, double arrival_rate,
                         std::size_t total_clients,
                         std::size_t cache_capacity, std::uint64_t seed);

  /// Next request that MISSED its client's cache. Cache hits are absorbed
  /// internally and counted.
  [[nodiscard]] Request next();

  [[nodiscard]] std::uint64_t demands() const noexcept { return demands_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] double hit_ratio() const noexcept {
    return demands_ ? static_cast<double>(hits_) /
                          static_cast<double>(demands_)
                    : 0.0;
  }
  [[nodiscard]] std::uint64_t hits_for_class(ClassId cls) const {
    return class_hits_[cls];
  }
  [[nodiscard]] std::size_t num_clients() const noexcept {
    return caches_.size();
  }

 private:
  static std::vector<std::size_t> split_clients(const ClientPopulation& pop,
                                                std::size_t total);

  const catalog::Catalog* catalog_;
  const ClientPopulation* population_;
  double rate_;
  rng::Xoshiro256ss arrivals_;
  rng::Xoshiro256ss items_;
  rng::Xoshiro256ss classes_;
  rng::Xoshiro256ss client_pick_;

  // Clients are stored contiguously; class c owns the id range
  // [class_offset_[c], class_offset_[c+1]).
  std::vector<std::size_t> class_offset_;
  std::vector<LruCache> caches_;

  des::SimTime clock_ = 0.0;
  RequestId next_id_ = 0;
  std::uint64_t demands_ = 0;
  std::uint64_t hits_ = 0;
  std::vector<std::uint64_t> class_hits_;
};

}  // namespace pushpull::workload
