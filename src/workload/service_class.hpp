#pragma once

#include <cstdint>
#include <string>

namespace pushpull::workload {

/// Index of a service class. Class 0 is the highest-priority class
/// (the paper's Class-A); larger indices are less important.
using ClassId = std::uint32_t;

/// A client service class.
///
/// `priority` is the paper's q_j: the weight a client of this class
/// contributes to an item's total priority Q_i, and the multiplier in the
/// prioritized cost q_j·E[T]. The paper sets A:B:C priorities in ratio
/// 1::2::3 while calling Class-A the *highest* priority; we resolve the
/// ambiguity by giving Class-A the largest weight (3,2,1) so that "more
/// important ⇒ scheduled sooner" holds throughout (see DESIGN.md).
///
/// `population_share` is the fraction of clients in this class; the paper
/// distributes clients across classes by a Zipf law with the *fewest*
/// clients in the most important class.
struct ServiceClass {
  std::string name;
  double priority = 1.0;
  double population_share = 0.0;
};

}  // namespace pushpull::workload
