#pragma once

#include <cstdint>

#include "catalog/item.hpp"
#include "des/event.hpp"
#include "workload/service_class.hpp"

namespace pushpull::workload {

/// Unique id of a client request within one simulation run.
using RequestId = std::uint64_t;

/// One client request: "a client of class `cls` asked for `item` at
/// `arrival`". The server never learns more than this about a client.
struct Request {
  RequestId id = 0;
  catalog::ItemId item = 0;
  ClassId cls = 0;
  des::SimTime arrival = 0.0;
};

}  // namespace pushpull::workload
