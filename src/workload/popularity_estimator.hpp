#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "catalog/item.hpp"
#include "des/event.hpp"

namespace pushpull::workload {

/// Online per-item popularity estimation with exponential forgetting.
///
/// Each observation adds weight 1 to its item; all weights decay with the
/// configured half-life of *virtual* time, so the estimate tracks a
/// drifting workload with a tunable memory. Decay is applied lazily (one
/// global log-scale clock), making observe() O(1).
class PopularityEstimator {
 public:
  /// `half_life`: virtual time for an observation's weight to halve.
  PopularityEstimator(std::size_t num_items, double half_life);

  [[nodiscard]] std::size_t num_items() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] double half_life() const noexcept { return half_life_; }

  /// Records a request for `item` at virtual time `now` (non-decreasing).
  void observe(catalog::ItemId item, des::SimTime now);

  /// Decayed weight of an item as of the last observation.
  [[nodiscard]] double weight(catalog::ItemId item) const;

  /// Normalized popularity estimate (uniform if nothing observed yet).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Item ids sorted by estimated popularity, hottest first (ties by id).
  [[nodiscard]] std::vector<catalog::ItemId> ranking() const;

  /// Total decayed observation mass.
  [[nodiscard]] double total_weight() const;

 private:
  // Weights are stored scaled by 2^(t/half_life) at observation time, so
  // decay never has to touch cold items; `scale_origin_` rebases the
  // exponent before it can overflow.
  [[nodiscard]] double scale_at(des::SimTime now) const {
    return std::exp2((now - scale_origin_) / half_life_);
  }
  void rebase(des::SimTime now);

  std::vector<double> weights_;
  double half_life_;
  des::SimTime scale_origin_ = 0.0;
  des::SimTime last_observation_ = 0.0;
};

}  // namespace pushpull::workload
