#include "workload/cached_generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "rng/exponential.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"

namespace pushpull::workload {

std::vector<std::size_t> CachedRequestGenerator::split_clients(
    const ClientPopulation& pop, std::size_t total) {
  std::vector<std::size_t> per_class(pop.num_classes());
  std::size_t assigned = 0;
  for (ClassId c = 0; c < pop.num_classes(); ++c) {
    per_class[c] = std::max<std::size_t>(
        1, static_cast<std::size_t>(pop.share(c) *
                                    static_cast<double>(total)));
    assigned += per_class[c];
  }
  // Give any rounding remainder to the largest (least important) class.
  if (assigned < total) {
    per_class[pop.num_classes() - 1] += total - assigned;
  }
  return per_class;
}

CachedRequestGenerator::CachedRequestGenerator(
    const catalog::Catalog& cat, const ClientPopulation& pop,
    double arrival_rate, std::vector<std::size_t> clients_per_class,
    std::size_t cache_capacity, std::uint64_t seed)
    : catalog_(&cat),
      population_(&pop),
      rate_(arrival_rate),
      arrivals_(rng::StreamFactory(seed).stream("arrivals")),
      items_(rng::StreamFactory(seed).stream("items")),
      classes_(rng::StreamFactory(seed).stream("classes")),
      client_pick_(rng::StreamFactory(seed).stream("client-pick")),
      class_hits_(pop.num_classes(), 0) {
  if (arrival_rate <= 0.0) {
    throw std::invalid_argument(
        "CachedRequestGenerator: arrival rate must be > 0");
  }
  if (clients_per_class.size() != pop.num_classes()) {
    throw std::invalid_argument(
        "CachedRequestGenerator: one client count per class required");
  }
  class_offset_.resize(pop.num_classes() + 1, 0);
  for (ClassId c = 0; c < pop.num_classes(); ++c) {
    if (clients_per_class[c] == 0) {
      throw std::invalid_argument(
          "CachedRequestGenerator: every class needs at least one client");
    }
    class_offset_[c + 1] = class_offset_[c] + clients_per_class[c];
  }
  caches_.assign(class_offset_.back(), LruCache(cache_capacity));
}

CachedRequestGenerator::CachedRequestGenerator(
    const catalog::Catalog& cat, const ClientPopulation& pop,
    double arrival_rate, std::size_t total_clients, std::size_t cache_capacity,
    std::uint64_t seed)
    : CachedRequestGenerator(cat, pop, arrival_rate,
                             split_clients(pop, total_clients),
                             cache_capacity, seed) {}

Request CachedRequestGenerator::next() {
  for (;;) {
    clock_ += rng::exponential(arrivals_, rate_);
    ++demands_;
    const ClassId cls = population_->sample_class(classes_);
    const std::size_t begin = class_offset_[cls];
    const std::size_t span = class_offset_[cls + 1] - begin;
    const std::size_t client =
        begin + static_cast<std::size_t>(rng::uniform_below(client_pick_, span));
    const catalog::ItemId item = catalog_->sample(items_);

    if (caches_[client].touch(item)) {
      ++hits_;
      ++class_hits_[cls];
      continue;  // served locally; nothing reaches the downlink
    }
    caches_[client].insert(item);  // the client will receive and keep it

    Request req;
    req.id = next_id_++;
    req.arrival = clock_;
    req.item = item;
    req.cls = cls;
    return req;
  }
}

}  // namespace pushpull::workload
