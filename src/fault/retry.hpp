#pragma once

#include <cstdint>

namespace pushpull::fault {

/// Client-side recovery policy for corrupted *pull* transmissions: the
/// client re-requests the item after an exponentially growing backoff, up
/// to `max_retries` attempts; a request whose last retry is also corrupted
/// is counted as lost. (Corrupted *push* transmissions need no policy —
/// the item simply comes around again on the broadcast program.)
struct RetryConfig {
  /// Re-requests a client issues before giving the item up as lost.
  std::uint32_t max_retries = 3;
  /// Backoff before the first re-request, in broadcast units.
  double backoff_base = 1.0;
  /// Multiplier applied per further attempt (2.0 = classic binary
  /// exponential backoff). Must be >= 1 so retries never get tighter.
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff delay. Without it, a large attempt
  /// count times a multiplier > 1 overflows double multiplication to
  /// infinity, and an event scheduled at t = inf deadlocks the run. The
  /// default is far above any default-config delay, so existing configs
  /// are numerically unchanged.
  double max_backoff = 1.0e6;

  /// Throws std::invalid_argument on a non-positive base, a multiplier
  /// below 1, or a max_backoff below backoff_base (or non-finite).
  void validate() const;

  /// Delay before re-request number `attempt` (1-based):
  /// min(backoff_base · backoff_multiplier^(attempt-1), max_backoff).
  /// Deterministic — jitter would add nothing here because each simulated
  /// client already has a unique corruption history. Always finite.
  [[nodiscard]] double backoff_delay(std::uint32_t attempt) const noexcept;
};

}  // namespace pushpull::fault
