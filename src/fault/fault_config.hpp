#pragma once

#include <cstddef>

#include "fault/channel.hpp"
#include "fault/retry.hpp"
#include "fault/shedding.hpp"

namespace pushpull::fault {

/// Everything the fault-injection layer can do to a hybrid run, in one
/// value. The default is the perfect channel the paper assumes: no
/// corruption, no shedding — and, crucially, *no extra random draws*, so a
/// default-constructed FaultConfig is bit-invisible in simulation output.
struct FaultConfig {
  /// Master switch for the unreliable downlink. When false the channel is
  /// never constructed and no fault stream is consumed.
  bool enabled = false;

  /// Gilbert–Elliott burst-error channel (used only when `enabled`).
  ChannelConfig channel;

  /// Recovery policy for corrupted pull transmissions.
  RetryConfig retry;

  /// Pull-queue capacity in *pending requests*; 0 = unbounded (no
  /// shedding). Shedding is orthogonal to corruption: a bounded queue
  /// protects the server under overload even on a perfect channel.
  std::size_t queue_capacity = 0;

  /// Which request to sacrifice when the bounded queue is full.
  ShedPolicy shed_policy = ShedPolicy::kDropTail;

  /// True when any fault mechanism (channel or bounded queue) is active.
  [[nodiscard]] bool active() const noexcept {
    return enabled || queue_capacity > 0;
  }

  /// Validates the channel and retry parameters; throws
  /// std::invalid_argument with context on the first violation.
  void validate() const {
    channel.validate();
    retry.validate();
  }
};

}  // namespace pushpull::fault
