#pragma once

#include <cstdint>

#include "obs/trace.hpp"
#include "rng/xoshiro256ss.hpp"

namespace pushpull::fault {

/// Parameters of a Gilbert–Elliott two-state burst-error downlink channel.
///
/// The channel is sampled once per downlink transmission: first the state
/// chain steps (Good→Bad with `p_good_to_bad`, Bad→Good with
/// `p_bad_to_good`), then the transmission is corrupted with the current
/// state's corruption probability. Bursty loss falls out of the chain: a
/// small `p_bad_to_good` keeps the channel in the Bad state for a geometric
/// run of transmissions, corrupting most of them.
struct ChannelConfig {
  /// Per-transmission transition probability Good → Bad.
  double p_good_to_bad = 0.0;
  /// Per-transmission transition probability Bad → Good.
  double p_bad_to_good = 1.0;
  /// Corruption probability while in the Good state.
  double corrupt_good = 0.0;
  /// Corruption probability while in the Bad state.
  double corrupt_bad = 0.0;

  /// Throws std::invalid_argument unless every probability is in [0, 1].
  void validate() const;

  /// Stationary probability of the Bad state,
  /// p_GB / (p_GB + p_BG); 0 when the chain never leaves Good.
  [[nodiscard]] double stationary_bad() const noexcept;

  /// Long-run corruption probability of one transmission under the
  /// stationary state distribution.
  [[nodiscard]] double mean_corruption() const noexcept;
};

/// The sampled channel: a state chain plus per-transmission corruption
/// draws, fed by its own dedicated engine so enabling the channel never
/// perturbs any other random stream of the simulation.
class GilbertElliottChannel {
 public:
  enum class State : std::uint8_t { kGood, kBad };

  /// `config` must already be validated; the engine is owned.
  GilbertElliottChannel(const ChannelConfig& config,
                        // detlint:allow(D5): ownership sink — consumes it
                        rng::Xoshiro256ss engine) noexcept
      : config_(config), engine_(engine) {}

  /// Steps the state chain and draws one transmission's fate.
  /// Returns true when the transmission is corrupted.
  [[nodiscard]] bool corrupts();

  /// Same draw (identical engine consumption — tracing never perturbs the
  /// stream), but emits fault-category "channel_bad"/"channel_good" events
  /// at sim time `now` when the chain changes state. `flips`, when
  /// non-null, counts those state changes for the CounterSet.
  [[nodiscard]] bool corrupts(const obs::Tracer& tracer, double now,
                              std::uint64_t* flips = nullptr);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t transmissions() const noexcept {
    return transmissions_;
  }
  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] std::uint64_t bad_state_transmissions() const noexcept {
    return bad_transmissions_;
  }

  /// Restores the start-of-run state (Good, zero counters) with a fresh
  /// engine, so a server reused across traces replays identically.
  // detlint:allow(D5): ownership sink — the fresh engine replaces the old
  void reset(rng::Xoshiro256ss engine) noexcept;

 private:
  ChannelConfig config_;
  rng::Xoshiro256ss engine_;
  State state_ = State::kGood;
  std::uint64_t transmissions_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t bad_transmissions_ = 0;
};

}  // namespace pushpull::fault
