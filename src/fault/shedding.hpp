#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pushpull::fault {

/// Admission policy of a bounded pull queue under overload.
enum class ShedPolicy {
  /// Reject the arriving request when the queue is at capacity.
  kDropTail,
  /// Evict the queued request with the lowest client priority (the paper's
  /// q_j); the arriving request is only rejected when it is itself the
  /// least important. Premium classes keep their QoS under overload.
  kDropLowestPriority,
};

[[nodiscard]] std::string_view to_string(ShedPolicy policy) noexcept;

/// Parses "tail" / "priority"; throws std::invalid_argument otherwise.
[[nodiscard]] ShedPolicy parse_shed_policy(const std::string& name);

/// Streaming victim selection for kDropLowestPriority: feed every queued
/// request through consider() and read back the one to evict. The rule is
/// exact and deterministic so runs replay identically:
///
///  * the candidate with the strictly lowest priority wins;
///  * priority ties prefer the *youngest* candidate (highest request id) —
///    the one that has invested the least waiting time;
///  * an arrival that is itself no more important than the selected victim
///    (arrival priority <= victim priority) should be shed instead — see
///    arrival_yields_to().
///
/// Templated on the candidate type so the accumulator stays in the fault
/// layer (below workload in the dependency order) yet serves the server's
/// workload::Request scan and the property tests' plain structs alike.
template <typename Candidate>
class LowestPriorityVictim {
 public:
  /// Offers one queued candidate. `candidate` must outlive the scan (the
  /// accumulator stores a pointer, not a copy).
  void consider(const Candidate& candidate, double priority,
                std::uint64_t id) noexcept {
    if (victim_ == nullptr || priority < priority_ ||
        (priority == priority_ && id > id_)) {
      victim_ = &candidate;
      priority_ = priority;
      id_ = id;
    }
  }

  /// The selected victim, or nullptr when nothing was offered.
  [[nodiscard]] const Candidate* victim() const noexcept { return victim_; }
  [[nodiscard]] double priority() const noexcept { return priority_; }

  /// True when an arrival with `arrival_priority` should be shed in place
  /// of the selected victim: nothing is queued, or the arrival is no more
  /// important than the victim.
  [[nodiscard]] bool arrival_yields_to(double arrival_priority) const noexcept {
    return victim_ == nullptr || arrival_priority <= priority_;
  }

 private:
  const Candidate* victim_ = nullptr;
  double priority_ = 0.0;  // meaningful only while victim_ != nullptr
  std::uint64_t id_ = 0;
};

}  // namespace pushpull::fault
