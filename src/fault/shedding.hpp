#pragma once

#include <string>
#include <string_view>

namespace pushpull::fault {

/// Admission policy of a bounded pull queue under overload.
enum class ShedPolicy {
  /// Reject the arriving request when the queue is at capacity.
  kDropTail,
  /// Evict the queued request with the lowest client priority (the paper's
  /// q_j); the arriving request is only rejected when it is itself the
  /// least important. Premium classes keep their QoS under overload.
  kDropLowestPriority,
};

[[nodiscard]] std::string_view to_string(ShedPolicy policy) noexcept;

/// Parses "tail" / "priority"; throws std::invalid_argument otherwise.
[[nodiscard]] ShedPolicy parse_shed_policy(const std::string& name);

}  // namespace pushpull::fault
