#include "fault/channel.hpp"

#include <stdexcept>
#include <string>

#include "rng/uniform.hpp"

namespace pushpull::fault {

namespace {

void check_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("ChannelConfig: " + std::string(name) +
                                " must be a probability in [0, 1], got " +
                                std::to_string(p));
  }
}

}  // namespace

void ChannelConfig::validate() const {
  check_probability(p_good_to_bad, "p_good_to_bad");
  check_probability(p_bad_to_good, "p_bad_to_good");
  check_probability(corrupt_good, "corrupt_good");
  check_probability(corrupt_bad, "corrupt_bad");
}

double ChannelConfig::stationary_bad() const noexcept {
  const double denom = p_good_to_bad + p_bad_to_good;
  return denom > 0.0 ? p_good_to_bad / denom : 0.0;
}

double ChannelConfig::mean_corruption() const noexcept {
  const double bad = stationary_bad();
  return (1.0 - bad) * corrupt_good + bad * corrupt_bad;
}

bool GilbertElliottChannel::corrupts() {
  // One transition draw, then one corruption draw — exactly two engine
  // consumptions per transmission, so the channel's random stream is a pure
  // function of the transmission index.
  const double transition = rng::uniform01(engine_);
  if (state_ == State::kGood) {
    if (transition < config_.p_good_to_bad) state_ = State::kBad;
  } else {
    if (transition < config_.p_bad_to_good) state_ = State::kGood;
  }
  ++transmissions_;
  if (state_ == State::kBad) ++bad_transmissions_;
  const double p =
      state_ == State::kBad ? config_.corrupt_bad : config_.corrupt_good;
  const bool corrupt = rng::uniform01(engine_) < p;
  if (corrupt) ++corrupted_;
  return corrupt;
}

bool GilbertElliottChannel::corrupts(const obs::Tracer& tracer, double now,
                                     std::uint64_t* flips) {
  const State before = state_;
  const bool corrupt = corrupts();
  if (state_ != before) {
    if (flips != nullptr) ++*flips;
    tracer.emit<obs::Category::kFault>(
        now, state_ == State::kBad ? "channel_bad" : "channel_good",
        transmissions_);
  }
  return corrupt;
}

// detlint:allow(D5): ownership sink — the fresh engine replaces the old
void GilbertElliottChannel::reset(rng::Xoshiro256ss engine) noexcept {
  engine_ = engine;
  state_ = State::kGood;
  transmissions_ = 0;
  corrupted_ = 0;
  bad_transmissions_ = 0;
}

}  // namespace pushpull::fault
