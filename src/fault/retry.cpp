#include "fault/retry.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace pushpull::fault {

void RetryConfig::validate() const {
  if (!(backoff_base > 0.0) || !std::isfinite(backoff_base)) {
    throw std::invalid_argument(
        "RetryConfig: backoff_base must be positive and finite, got " +
        std::to_string(backoff_base));
  }
  if (!(backoff_multiplier >= 1.0) || !std::isfinite(backoff_multiplier)) {
    throw std::invalid_argument(
        "RetryConfig: backoff_multiplier must be >= 1 and finite, got " +
        std::to_string(backoff_multiplier));
  }
  if (!(max_backoff >= backoff_base) || !std::isfinite(max_backoff)) {
    throw std::invalid_argument(
        "RetryConfig: max_backoff must be finite and >= backoff_base "
        "(otherwise the very first retry would already exceed the cap), "
        "got " + std::to_string(max_backoff));
  }
}

double RetryConfig::backoff_delay(std::uint32_t attempt) const noexcept {
  double delay = backoff_base;
  for (std::uint32_t i = 1; i < attempt; ++i) {
    // Stop multiplying once past the cap: with a large attempt count the
    // repeated product would overflow to inf before the final clamp.
    if (delay >= max_backoff) break;
    delay *= backoff_multiplier;
  }
  return delay < max_backoff ? delay : max_backoff;
}

}  // namespace pushpull::fault
