#include "fault/retry.hpp"

#include <stdexcept>
#include <string>

namespace pushpull::fault {

void RetryConfig::validate() const {
  if (!(backoff_base > 0.0)) {
    throw std::invalid_argument(
        "RetryConfig: backoff_base must be positive, got " +
        std::to_string(backoff_base));
  }
  if (!(backoff_multiplier >= 1.0)) {
    throw std::invalid_argument(
        "RetryConfig: backoff_multiplier must be >= 1, got " +
        std::to_string(backoff_multiplier));
  }
}

double RetryConfig::backoff_delay(std::uint32_t attempt) const noexcept {
  double delay = backoff_base;
  for (std::uint32_t i = 1; i < attempt; ++i) delay *= backoff_multiplier;
  return delay;
}

}  // namespace pushpull::fault
