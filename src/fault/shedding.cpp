#include "fault/shedding.hpp"

#include <stdexcept>

namespace pushpull::fault {

std::string_view to_string(ShedPolicy policy) noexcept {
  switch (policy) {
    case ShedPolicy::kDropTail:
      return "tail";
    case ShedPolicy::kDropLowestPriority:
      return "priority";
  }
  return "?";
}

ShedPolicy parse_shed_policy(const std::string& name) {
  if (name == "tail") return ShedPolicy::kDropTail;
  if (name == "priority") return ShedPolicy::kDropLowestPriority;
  throw std::invalid_argument("unknown shed policy '" + name +
                              "' (expected 'tail' or 'priority')");
}

}  // namespace pushpull::fault
